// Package iosched is a library for scheduling the I/O of HPC applications
// under congestion, reproducing Gainaru, Aupy, Benoit, Cappello, Robert
// and Snir, "Scheduling the I/O of HPC applications under congestion"
// (IPDPS 2015; INRIA RR-8519).
//
// The package re-exports the user-facing API of the internal packages:
//
//   - the platform/application model of Section 2 (N nodes of I/O-card
//     bandwidth b in front of a file system of bandwidth B; applications
//     alternating compute chunks and I/O transfers);
//   - the online scheduling heuristics of Section 3.1 (RoundRobin,
//     MinDilation, MaxSysEff, MinMax-γ, and their Priority variants) and
//     the fair-share baseline standing in for production I/O schedulers;
//   - the event-driven simulator of Section 4 and the rank-level cluster
//     emulator of Section 5 (modified IOR with a scheduler thread);
//   - the periodic scheduling heuristics of Section 3.2;
//   - workload generators following the paper's Darshan-based
//     characterization, and the experiment registry that regenerates
//     every table and figure of the evaluation.
//
// Quick start:
//
//	p := iosched.Vesta()
//	apps := []*iosched.App{
//		iosched.NewPeriodicApp(0, 256, 30, 60, 10),
//		iosched.NewPeriodicApp(1, 512, 45, 120, 8),
//	}
//	res, err := iosched.Simulate(iosched.SimConfig{
//		Platform:  p.WithoutBB(),
//		Scheduler: iosched.MaxSysEff(),
//		Apps:      apps,
//	})
//	if err != nil { ... }
//	fmt.Println(res.Summary.SysEfficiency, res.Summary.Dilation)
package iosched

import (
	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dectrace"
	"repro/internal/experiments"
	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/periodic"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/twin"
	"repro/internal/workload"
)

// Platform model (Section 2).
type (
	// Platform is a machine: N nodes with per-node I/O bandwidth b and a
	// file system of total bandwidth B, optionally with burst buffers.
	Platform = platform.Platform
	// BurstBuffer is an intermediate staging tier description.
	BurstBuffer = platform.BurstBuffer
	// App is one application: β dedicated nodes and a sequence of
	// compute-then-I/O instances.
	App = platform.App
	// Instance is one compute/I-O phase.
	Instance = platform.Instance
)

// Machine presets used in the paper.
var (
	// Intrepid is Argonne's 40-rack BlueGene/P.
	Intrepid = platform.Intrepid
	// Mira is Argonne's 48-rack BlueGene/Q.
	Mira = platform.Mira
	// Vesta is Mira's two-rack development platform, the Section 5
	// testbed.
	Vesta = platform.Vesta
)

// NewPeriodicApp builds an application with n identical instances of w
// seconds of compute followed by vol GiB of I/O.
func NewPeriodicApp(id, nodes int, w, vol float64, n int) *App {
	return platform.NewPeriodic(id, nodes, w, vol, n)
}

// Scheduling (Section 3.1).
type (
	// Scheduler decides bandwidth sharing at every I/O event.
	Scheduler = core.Scheduler
	// Heuristic is an ordering-based greedy online scheduler.
	Heuristic = core.Heuristic
	// FairShare is the neutral max-min baseline (production scheduler).
	FairShare = core.FairShare
)

// ProportionalShare is the node-proportional baseline.
type ProportionalShare = core.ProportionalShare

// Online heuristic constructors.
var (
	// RoundRobin favors the application whose last I/O finished longest
	// ago (the comparison baseline heuristic).
	RoundRobin = core.RoundRobin
	// MinDilation favors the most slowed applications (user-oriented).
	MinDilation = core.MinDilation
	// MaxSysEff favors applications with the lowest β·ρ̃ (CPU-oriented).
	MaxSysEff = core.MaxSysEff
	// MinMax trades the two off around the threshold γ.
	MinMax = core.MinMax
	// SchedulerByName builds a scheduler from its report name
	// (e.g. "Priority-MinMax-0.5").
	SchedulerByName = core.ByName
	// AllHeuristics returns the eight Figure 6 heuristics.
	AllHeuristics = core.AllHeuristics
	// WithTimeout wraps a scheduler so no request waits longer than the
	// I/O system's timeout (Section 2.1 of the paper).
	WithTimeout = core.NewTimeout
)

// Simulation (Section 4).
type (
	// SimConfig configures one simulator run.
	SimConfig = sim.Config
	// SimResult is the simulator outcome.
	SimResult = sim.Result
	// AppPerf is one application's performance record.
	AppPerf = metrics.AppPerf
	// Summary holds the run objectives (SysEfficiency, Dilation, ...).
	Summary = metrics.Summary
)

// ExecTrace records per-application phases and bandwidths over a
// simulation for visualization.
type ExecTrace = sim.Trace

// RenderGantt draws execution-trace rows as an ASCII timeline.
var RenderGantt = report.RenderGantt

// Simulate runs the application-level event-driven simulator.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// Warm starts and the digital twin (internal/sim snapshots,
// internal/twin forecasting).
type (
	// SimSnapshot is a simulation's complete state at one event instant;
	// resuming it is bit-identical to an uninterrupted run.
	SimSnapshot = sim.Snapshot
	// TwinConfig configures a forecasting engine.
	TwinConfig = twin.Config
	// TwinEngine fast-forwards snapshots under candidate policies.
	TwinEngine = twin.Engine
	// TwinForecast is one policy's predicted future.
	TwinForecast = twin.Forecast
	// TwinAdvisor turns forecast panels into hysteresis-guarded switch
	// recommendations.
	TwinAdvisor = twin.Advisor
)

var (
	// SimulateToSnapshot runs a simulation until a stop time and captures
	// its state.
	SimulateToSnapshot = sim.RunToSnapshot
	// ResumeSimulation continues a snapshot to completion.
	ResumeSimulation = sim.Resume
	// NewTwin builds a forecasting engine.
	NewTwin = twin.New
	// NewTwinAdvisor builds a policy advisor.
	NewTwinAdvisor = twin.NewAdvisor
	// AdvisedSimulate executes a workload under advisor control.
	AdvisedSimulate = twin.AdvisedRun
)

// Decision tracing and counterfactual replay (internal/dectrace,
// twin.Explain): every allocation decision point of the simulator and
// the daemon, recordable as JSONL or an in-memory ring, plus the engine
// that forks a recorded run at its decision points to price them.
type (
	// DecisionRecord is one decision point: timestamp, triggering event
	// kind, verdict (grants or a skip reason) and the engine's view of
	// the candidates.
	DecisionRecord = dectrace.Record
	// DecisionSink consumes decision records as the engine makes them
	// (attach via SimConfig.DecisionTrace).
	DecisionSink = dectrace.Sink
	// DecisionRing keeps the most recent records in memory.
	DecisionRing = dectrace.Ring
	// DecisionWriter streams records as JSON Lines.
	DecisionWriter = dectrace.Writer
	// ExplainConfig configures a counterfactual replay.
	ExplainConfig = twin.ExplainConfig
	// Explanation ranks a run's costliest decisions.
	Explanation = twin.Explanation
)

var (
	// NewDecisionRing builds a ring sink keeping the last n records.
	NewDecisionRing = dectrace.NewRing
	// NewDecisionWriter builds a JSONL streaming sink.
	NewDecisionWriter = dectrace.NewWriter
	// ReadDecisionTrace parses a recorded JSONL decision trace.
	ReadDecisionTrace = dectrace.ReadAll
	// Explain records a run's decisions and replays the alternatives.
	Explain = twin.Explain
	// WhatIfGrants forks a snapshot with one forced grant vector.
	WhatIfGrants = twin.WhatIfGrants
)

// Telemetry (internal/telemetry): low-overhead congestion time series and
// latency histograms shared by the simulator and the daemon. Attach a
// probe via SimConfig.Telemetry (or server.Config.Telemetry) and read the
// captured series from SimResult.Telemetry; a nil probe costs nothing
// (see docs/observability.md).
type (
	// TelemetryProbe collects sampled congestion points and named
	// latency histograms while an engine runs.
	TelemetryProbe = telemetry.Probe
	// TelemetryPoint is one sampled instant of the congestion series.
	TelemetryPoint = telemetry.Point
	// TelemetrySnapshot is a probe's captured series plus histogram
	// snapshots (the type of SimResult.Telemetry); its Aggregate method
	// reduces one named series over a window.
	TelemetrySnapshot = telemetry.Telemetry
	// TelemetryWindow is a closed [Start, End] aggregation window.
	TelemetryWindow = telemetry.Window
	// TelemetrySeriesStats summarizes one series over a window.
	TelemetrySeriesStats = telemetry.SeriesStats
)

var (
	// TelemetrySeriesNames lists the congestion series a probe samples.
	TelemetrySeriesNames = telemetry.SeriesNames
	// TelemetryWindowedSummary reduces per-app performance records to the
	// paper's objectives over one window (bit-identical to Summarize for
	// a window containing every record).
	TelemetryWindowedSummary = telemetry.WindowedSummary
	// TelemetrySparkline renders a series as a UTF-8 sparkline.
	TelemetrySparkline = telemetry.Sparkline
)

// Health (internal/health): streaming anomaly detectors over the
// telemetry signal, an aggregate verdict with hysteresis, and the
// flight recorder producing deterministic incident bundles. Attach a
// monitor via SimConfig.Health (or server.Config.Health) and read the
// final verdict from SimResult.Health; a nil monitor costs nothing
// (see docs/observability.md).
type (
	// HealthMonitor evaluates the anomaly detectors incrementally from
	// telemetry points.
	HealthMonitor = health.Monitor
	// HealthConfig tunes detector thresholds and hysteresis.
	HealthConfig = health.Config
	// HealthState is the aggregate verdict (ok/degraded/critical).
	HealthState = health.State
	// HealthAlert is one detector firing/resolved transition.
	HealthAlert = health.Alert
	// HealthVerdict is one detector's current standing.
	HealthVerdict = health.Verdict
	// HealthSnapshot is a monitor's point-in-time verdict state (the
	// type of SimResult.Health).
	HealthSnapshot = health.Snapshot
	// IncidentBundle is a flight-recorder dump: detector state, alerts,
	// telemetry, decisions and live snapshot, deterministically encoded.
	IncidentBundle = health.Bundle
	// FlightRecorder assembles incident bundles from pluggable sources.
	FlightRecorder = health.Recorder
	// IncidentReplayReport is the outcome of re-evaluating a bundle.
	IncidentReplayReport = health.ReplayReport
)

// Health state verdicts.
const (
	// HealthOK means no detector is firing.
	HealthOK = health.OK
	// HealthDegraded means a degraded-severity detector is firing.
	HealthDegraded = health.Degraded
	// HealthCritical means a critical-severity detector is firing.
	HealthCritical = health.Critical
)

var (
	// NewHealthMonitor builds a monitor (zero HealthConfig = defaults).
	NewHealthMonitor = health.New
	// HealthDetectorNames lists the detectors in evaluation order.
	HealthDetectorNames = health.DetectorNames
	// DecodeIncidentBundle parses an encoded incident bundle.
	DecodeIncidentBundle = health.DecodeBundle
	// ReplayIncident re-runs the detectors over a bundle's telemetry.
	ReplayIncident = health.Replay
	// BuildInfo reports the binary's build identity (version, VCS
	// revision, toolchain).
	BuildInfo = buildinfo.Get
)

// Cluster emulation (Section 5).
type (
	// ClusterConfig configures one rank-level emulator run (modified IOR
	// with a scheduler thread on Vesta).
	ClusterConfig = cluster.Config
	// ClusterResult is the emulator outcome.
	ClusterResult = cluster.Result
	// IORGroup describes one IOR process group.
	IORGroup = cluster.AppConfig
)

// Cluster benchmark modes.
const (
	// OriginalIOR runs the unmodified benchmark.
	OriginalIOR = cluster.OriginalIOR
	// AlwaysGrant adds the scheduler machinery but approves everything.
	AlwaysGrant = cluster.AlwaysGrant
	// Scheduled runs a real policy.
	Scheduled = cluster.Scheduled
)

// Emulate runs the rank-level cluster emulator.
func Emulate(cfg ClusterConfig) (*ClusterResult, error) { return cluster.Run(cfg) }

// Periodic scheduling (Section 3.2).
type (
	// PeriodicSchedule is a fixed timetable repeated every T seconds.
	PeriodicSchedule = periodic.Schedule
	// PeriodSearchResult is the outcome of the (1+ε) period search.
	PeriodSearchResult = periodic.SearchResult
)

// Periodic heuristic names for SearchPeriod.
const (
	// InsertThrou is Insert-In-Schedule-Throu (SysEfficiency-oriented).
	InsertThrou = periodic.HeuristicThrou
	// InsertCong is Insert-In-Schedule-Cong (Dilation-oriented).
	InsertCong = periodic.HeuristicCong
)

// SearchPeriod runs the paper's period search with one of the two
// insertion heuristics.
func SearchPeriod(p *Platform, apps []*App, heuristic string, tmax, eps float64) (*PeriodSearchResult, error) {
	return periodic.SearchPeriod(p, apps, heuristic, tmax, eps)
}

// Workload generation (Section 4.1).
type (
	// WorkloadConfig drives the synthetic mix generator.
	WorkloadConfig = workload.Config
	// WorkloadSpec is one application group to draw.
	WorkloadSpec = workload.Spec
	// Moment is one congested moment (platform + application mix).
	Moment = workload.Moment
	// Fig6Kind selects one of the three Figure 6 scenario panels.
	Fig6Kind = workload.Fig6Kind
)

// The Figure 6 scenario panels (Section 4.2).
const (
	Fig6A = workload.Fig6A
	Fig6B = workload.Fig6B
	Fig6C = workload.Fig6C
)

// AppTemplate models one of the paper's named periodic production codes
// (S3D, HOMME, GTC, Enzo, HACC, CM1).
type AppTemplate = workload.Template

// Workload helpers.
var (
	// GenerateWorkload draws a seeded application mix.
	GenerateWorkload = workload.Generate
	// Fig6Workload returns the generator configuration of one Figure 6
	// panel replicate.
	Fig6Workload = workload.Fig6Config
	// IntrepidMoments and MiraMoments build the congested-moment sets
	// behind Tables 1 and 2.
	IntrepidMoments = workload.IntrepidMoments
	MiraMoments     = workload.MiraMoments
	// AppTemplates returns the named application models of Section 4.1.
	AppTemplates = workload.Templates
	// DalyPeriod computes the optimal checkpoint interval (Daly 2004),
	// the paper's canonical source of periodic applications.
	DalyPeriod = workload.DalyPeriod
	// CheckpointApp builds the periodic application induced by optimal
	// checkpointing.
	CheckpointApp = workload.CheckpointApp
)

// Experiments: the per-table/figure reproduction registry.
type (
	// Experiment reproduces one table or figure of the paper.
	Experiment = experiments.Experiment
	// ExperimentConfig scales an experiment run.
	ExperimentConfig = experiments.Config
	// ReportDocument is a rendered experiment result.
	ReportDocument = report.Document
)

// Experiment registry accessors.
var (
	// Experiments returns all registered experiments sorted by ID.
	Experiments = experiments.All
	// ExperimentByID looks one up ("fig8", "table1", ...).
	ExperimentByID = experiments.Get
)

// Trace replay: evaluate the scheduler on recorded machine traces.
type (
	// ReplayOptions configures a trace replay analysis.
	ReplayOptions = replay.Options
	// ReplayResult is a full trace analysis.
	ReplayResult = replay.Result
)

// ReplayTrace finds a trace's congested windows and replays them under the
// baseline and the heuristics.
var ReplayTrace = replay.Analyze
