package iosched_test

import (
	"math"
	"testing"

	iosched "repro"
)

func TestPublicAPISimulate(t *testing.T) {
	machine := &iosched.Platform{Name: "t", Nodes: 100, NodeBW: 1, TotalBW: 10}
	apps := []*iosched.App{
		iosched.NewPeriodicApp(0, 30, 100, 120, 4),
		iosched.NewPeriodicApp(1, 40, 80, 100, 5),
	}
	res, err := iosched.Simulate(iosched.SimConfig{
		Platform:  machine,
		Scheduler: iosched.MaxSysEff(),
		Apps:      apps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Dilation < 1 {
		t.Errorf("dilation %g < 1", res.Summary.Dilation)
	}
	if res.Summary.SysEfficiency <= 0 || res.Summary.SysEfficiency > res.Summary.UpperLimit {
		t.Errorf("efficiency %g outside (0, %g]", res.Summary.SysEfficiency, res.Summary.UpperLimit)
	}
}

// TestCrossValidationSimVsCluster is the reproduction of the paper's
// Section 5 validation: the coarse event-driven simulator and the
// rank-level cluster emulator must agree on the same scenario once the
// emulator's message latencies and jitter are negligible.
func TestCrossValidationSimVsCluster(t *testing.T) {
	const (
		ranks = 256
		iters = 10
		work  = 2.0
		block = 0.1
	)
	vesta := iosched.Vesta()

	clusterRes, err := iosched.Emulate(iosched.ClusterConfig{
		Platform: vesta,
		Mode:     iosched.Scheduled,
		Policy:   iosched.MaxSysEff(),
		Apps: []iosched.IORGroup{
			{ID: 0, Name: "a", Ranks: ranks, Iterations: iters, Work: work, BlockGiB: block},
			{ID: 1, Name: "b", Ranks: ranks, Iterations: iters, Work: work, BlockGiB: block},
		},
		MsgLatency:    1e-7,
		ReqLatency:    1e-7,
		ProcTime:      1e-8,
		ComputeJitter: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}

	vol := float64(ranks) * block
	simRes, err := iosched.Simulate(iosched.SimConfig{
		Platform:  vesta.WithoutBB(),
		Scheduler: iosched.MaxSysEff(),
		Apps: []*iosched.App{
			iosched.NewPeriodicApp(0, ranks, work, vol, iters),
			iosched.NewPeriodicApp(1, ranks, work, vol, iters),
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := range simRes.Apps {
		sf, cf := simRes.Apps[i].Finish, clusterRes.Apps[i].Finish
		if rel := math.Abs(sf-cf) / sf; rel > 0.02 {
			t.Errorf("app %d finish: sim %.3f vs cluster %.3f (%.1f%% apart)",
				i, sf, cf, 100*rel)
		}
		sd, cd := simRes.Apps[i].Dilation(), clusterRes.Apps[i].Dilation()
		if math.Abs(sd-cd) > 0.05 {
			t.Errorf("app %d dilation: sim %.3f vs cluster %.3f", i, sd, cd)
		}
	}
}

func TestSchedulerByNameFacade(t *testing.T) {
	s, err := iosched.SchedulerByName("Priority-MinMax-0.5")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "Priority-MinMax-0.5" {
		t.Errorf("name = %q", s.Name())
	}
	if _, err := iosched.SchedulerByName("nope"); err == nil {
		t.Error("bogus name accepted")
	}
}

func TestExperimentRegistryFacade(t *testing.T) {
	all := iosched.Experiments()
	if len(all) < 17 {
		t.Errorf("registry exposes %d experiments, want >= 17", len(all))
	}
	if _, ok := iosched.ExperimentByID("table1"); !ok {
		t.Error("table1 missing")
	}
}

func TestPresetsFacade(t *testing.T) {
	for _, p := range []*iosched.Platform{iosched.Intrepid(), iosched.Mira(), iosched.Vesta()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestPeriodicFacade(t *testing.T) {
	machine := &iosched.Platform{Name: "t", Nodes: 100, NodeBW: 1, TotalBW: 10}
	apps := []*iosched.App{
		iosched.NewPeriodicApp(0, 20, 35, 24, 1),
		iosched.NewPeriodicApp(1, 30, 90, 35, 1),
	}
	res, err := iosched.SearchPeriod(machine, apps, iosched.InsertCong, 1000, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Error(err)
	}
}
