// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablation studies. Each benchmark iteration runs
// the full experiment pipeline (workload generation, simulation or
// cluster emulation across all schedulers, aggregation) at reduced
// replicate counts; run `cmd/iosim -run all` for the paper-scale version.
//
//	go test -bench=. -benchmem
package iosched_test

import (
	"fmt"
	"io"
	"testing"

	iosched "repro"
	"repro/internal/experiments"
)

// benchExperiment runs one registry entry per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := experiments.Config{Quick: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(doc.Tables)+len(doc.Figures) == 0 {
			b.Fatalf("%s produced an empty document", id)
		}
	}
}

// One benchmark per paper artifact (DESIGN.md §3).

func BenchmarkFig1Throughput(b *testing.B)       { benchExperiment(b, "fig1") }
func BenchmarkFig5Workload(b *testing.B)         { benchExperiment(b, "fig5") }
func BenchmarkFig6aHeuristics(b *testing.B)      { benchExperiment(b, "fig6a") }
func BenchmarkFig6bHeuristics(b *testing.B)      { benchExperiment(b, "fig6b") }
func BenchmarkFig6cHeuristics(b *testing.B)      { benchExperiment(b, "fig6c") }
func BenchmarkFig7Sensibility(b *testing.B)      { benchExperiment(b, "fig7") }
func BenchmarkFig8Intrepid(b *testing.B)         { benchExperiment(b, "fig8") }
func BenchmarkFig9MinMax(b *testing.B)           { benchExperiment(b, "fig9") }
func BenchmarkFig10NonPriority(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkFig11Mira(b *testing.B)            { benchExperiment(b, "fig11") }
func BenchmarkFig12MinMaxMira(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkFig13NonPriorityMira(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkTable1Intrepid(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkTable2Mira(b *testing.B)           { benchExperiment(b, "table2") }
func BenchmarkFig14Overhead(b *testing.B)        { benchExperiment(b, "fig14") }
func BenchmarkFig15Vesta(b *testing.B)           { benchExperiment(b, "fig15") }
func BenchmarkFig16PerApp(b *testing.B)          { benchExperiment(b, "fig16") }

// Ablation and extension benches (DESIGN.md §5).

func BenchmarkAblationGamma(b *testing.B)      { benchExperiment(b, "ablation-gamma") }
func BenchmarkAblationPriority(b *testing.B)   { benchExperiment(b, "ablation-priority") }
func BenchmarkAblationBB(b *testing.B)         { benchExperiment(b, "ablation-bb") }
func BenchmarkAblationThrouOrder(b *testing.B) { benchExperiment(b, "ablation-throu-order") }
func BenchmarkAblationTimeout(b *testing.B)    { benchExperiment(b, "ablation-timeout") }
func BenchmarkAblationSharedNet(b *testing.B)  { benchExperiment(b, "ablation-shared-network") }
func BenchmarkPeriodicVsOnline(b *testing.B)   { benchExperiment(b, "periodic-vs-online") }
func BenchmarkVerifyClaims(b *testing.B)       { benchExperiment(b, "verify") }

// Component benchmarks: the scheduling hot path and both execution
// engines, independent of the experiment harness.

func BenchmarkSimulateCongestedMoment(b *testing.B) {
	moment := iosched.IntrepidMoments(1, 7)[0]
	sched := iosched.MaxSysEff().WithPriority()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := iosched.Simulate(iosched.SimConfig{
			Platform:  moment.Platform.WithoutBB(),
			Scheduler: sched,
			Apps:      moment.Apps,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Summary.Dilation < 1 {
			b.Fatal("dilation below 1")
		}
	}
}

// BenchmarkSimFig6Cell is one campaign cell of the Figure 6 sweep — the
// system's dominant hot path after PR 1 fanned sweeps out over thousands
// of cells. It also reports the event-kernel engine's decision economy:
// scheduler invocations and skipped decision points per run.
func BenchmarkSimFig6Cell(b *testing.B) {
	wcfg := iosched.Fig6Workload(iosched.Fig6B, 7)
	apps, err := iosched.GenerateWorkload(wcfg)
	if err != nil {
		b.Fatal(err)
	}
	sched := iosched.MaxSysEff()
	b.ReportAllocs()
	b.ResetTimer()
	var decisions, skipped int
	for i := 0; i < b.N; i++ {
		res, err := iosched.Simulate(iosched.SimConfig{
			Platform:  wcfg.Platform.WithoutBB(),
			Scheduler: sched,
			Apps:      apps,
		})
		if err != nil {
			b.Fatal(err)
		}
		decisions, skipped = res.Decisions, res.Skipped
	}
	b.ReportMetric(float64(decisions), "decisions/run")
	b.ReportMetric(float64(skipped), "skipped/run")
}

// BenchmarkFig6aTraced is the fig6a cell with the decision-trace layer
// attached and streaming JSONL to a discarded writer — the full cost of
// observing every decision point (candidate-view capture + JSON encode).
// Compare against BenchmarkSimFig6Cell to price the tracing overhead;
// the disabled-path cost is zero by construction (every capture is
// nil-gated) and pinned by the daemon's allocation-free round test.
func BenchmarkFig6aTraced(b *testing.B) {
	wcfg := iosched.Fig6Workload(iosched.Fig6A, 7)
	apps, err := iosched.GenerateWorkload(wcfg)
	if err != nil {
		b.Fatal(err)
	}
	sched := iosched.MaxSysEff()
	w := iosched.NewDecisionWriter(io.Discard)
	b.ReportAllocs()
	b.ResetTimer()
	var points int
	for i := 0; i < b.N; i++ {
		res, err := iosched.Simulate(iosched.SimConfig{
			Platform:      wcfg.Platform.WithoutBB(),
			Scheduler:     sched,
			Apps:          apps,
			DecisionTrace: w,
		})
		if err != nil {
			b.Fatal(err)
		}
		points = res.Decisions + res.Skipped
	}
	b.StopTimer()
	if err := w.Err(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(points), "points/run")
}

// BenchmarkFig6aTelemetry prices the telemetry layer on the fig6a cell:
// the "on" variant attaches a probe with a bounded ring (MinInterval 0,
// so every event instant is sampled — the worst case), the "off" variant
// runs the identical simulation with a nil probe. "off" must match the
// untelemetered cell baseline within the benchgate tolerance — that is
// the enforced form of the "disabled telemetry is free" claim — and "on"
// must stay allocation-identical to "off" once the ring is warm (the
// probe is reused across iterations, so the ring allocates only on the
// first run).
func BenchmarkFig6aTelemetry(b *testing.B) {
	wcfg := iosched.Fig6Workload(iosched.Fig6A, 7)
	apps, err := iosched.GenerateWorkload(wcfg)
	if err != nil {
		b.Fatal(err)
	}
	sched := iosched.MaxSysEff()
	run := func(b *testing.B, probe *iosched.TelemetryProbe) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		var points int
		for i := 0; i < b.N; i++ {
			res, err := iosched.Simulate(iosched.SimConfig{
				Platform:  wcfg.Platform.WithoutBB(),
				Scheduler: sched,
				Apps:      apps,
				Telemetry: probe,
			})
			if err != nil {
				b.Fatal(err)
			}
			if probe != nil {
				points = len(res.Telemetry.Points)
			}
		}
		if probe != nil {
			b.ReportMetric(float64(points), "points/run")
		}
	}
	b.Run("on", func(b *testing.B) {
		run(b, &iosched.TelemetryProbe{MaxPoints: 4096})
	})
	b.Run("off", func(b *testing.B) {
		run(b, nil)
	})
}

// BenchmarkFig6aHealth prices the health layer on the fig6a cell: the
// "on" variant attaches a monitor (default thresholds) observing every
// decision point, the "off" variant runs the identical simulation with
// a nil monitor. "off" must match the unmonitored cell baseline within
// the benchgate tolerance — the enforced form of the "disabled health
// is free" claim. Unlike the telemetry probe, a monitor is per-run
// state (detector clocks follow the engine clock), so "on" builds a
// fresh one each iteration exactly as the campaign runner does; its
// cost therefore includes monitor construction plus the evidence
// strings of the firing transitions this cell genuinely triggers.
func BenchmarkFig6aHealth(b *testing.B) {
	wcfg := iosched.Fig6Workload(iosched.Fig6A, 7)
	apps, err := iosched.GenerateWorkload(wcfg)
	if err != nil {
		b.Fatal(err)
	}
	sched := iosched.MaxSysEff()
	run := func(b *testing.B, mon func() *iosched.HealthMonitor) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		var anomalies int
		for i := 0; i < b.N; i++ {
			cfg := iosched.SimConfig{
				Platform:  wcfg.Platform.WithoutBB(),
				Scheduler: sched,
				Apps:      apps,
			}
			if mon != nil {
				cfg.Health = mon()
			}
			res, err := iosched.Simulate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if mon != nil {
				anomalies = res.Anomalies
			}
		}
		if mon != nil {
			b.ReportMetric(float64(anomalies), "anomalies")
		}
	}
	b.Run("on", func(b *testing.B) {
		run(b, func() *iosched.HealthMonitor { return iosched.NewHealthMonitor(iosched.HealthConfig{}) })
	})
	b.Run("off", func(b *testing.B) {
		run(b, nil)
	})
}

// population100k builds the scaled synthetic population behind
// BenchmarkFig6a100k: the fig6a periodic shape (compute phase, then one
// bulk write) pushed three orders of magnitude past the paper's Figure 6
// populations, as ROADMAP open item 4 demands. The population is grouped
// into cohorts that release together and stay in flight concurrently —
// at the peak, half the population is in I/O at once — so the benchmark
// exercises exactly the structures that wall at this scale: candidate-set
// membership maintenance, the timer heap, and the per-event sweeps. The
// platform is provisioned so the aggregate demand stays within capacity
// (the Saturating fast path carries the rounds, as a well-provisioned
// deployment would), keeping the measured cost the engine's own overhead
// rather than policy sorting.
func population100k(nApps, cohorts int) (*iosched.Platform, []*iosched.App) {
	const nodesPerApp = 64
	p := &iosched.Platform{
		Name:    "scale-bench",
		Nodes:   nApps*nodesPerApp + 1,
		NodeBW:  0.0125,
		TotalBW: float64(nApps) * nodesPerApp * 0.0125 * 1.25,
	}
	size := nApps / cohorts
	apps := make([]*iosched.App, 0, nApps)
	for c := 0; c < cohorts; c++ {
		work := 100 + 10*float64(c)
		for i := 0; i < size; i++ {
			apps = append(apps, iosched.NewPeriodicApp(c*size+i, nodesPerApp, work, 80, 1))
		}
	}
	return p, apps
}

// BenchmarkFig6a100k is the population-scale throughput benchmark: one
// complete simulation of 100k applications (20 cohorts of 5k, peak 50k
// concurrent candidates). It is recorded in BENCH_baseline.json and gated
// by cmd/benchgate; a reintroduced O(n) per-membership-change candidate
// list (the pre-SoA layout) regresses it by well over an order of
// magnitude.
func BenchmarkFig6a100k(b *testing.B) {
	p, apps := population100k(100_000, 20)
	sched := iosched.MaxSysEff()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := iosched.Simulate(iosched.SimConfig{
			Platform:  p,
			Scheduler: sched,
			Apps:      apps,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Summary.Dilation < 1 {
			b.Fatal("dilation below 1")
		}
	}
}

func BenchmarkEmulateVestaScenario(b *testing.B) {
	for _, ranks := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("ranks-%d", ranks), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := iosched.Emulate(iosched.ClusterConfig{
					Platform: iosched.Vesta(),
					Mode:     iosched.Scheduled,
					Policy:   iosched.MaxSysEff(),
					Apps: []iosched.IORGroup{
						{ID: 0, Name: "a", Ranks: ranks / 2, Iterations: 5, Work: 2, BlockGiB: 0.1},
						{ID: 1, Name: "b", Ranks: ranks / 2, Iterations: 5, Work: 2, BlockGiB: 0.1},
					},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPeriodSearch(b *testing.B) {
	machine := &iosched.Platform{Name: "bench", Nodes: 512, NodeBW: 0.25, TotalBW: 16}
	apps := []*iosched.App{
		iosched.NewPeriodicApp(0, 100, 50, 30, 1),
		iosched.NewPeriodicApp(1, 150, 120, 80, 1),
		iosched.NewPeriodicApp(2, 80, 200, 60, 1),
		iosched.NewPeriodicApp(3, 120, 90, 45, 1),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := iosched.SearchPeriod(machine, apps, iosched.InsertCong, 3000, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Schedule == nil {
			b.Fatal("no schedule")
		}
	}
}
