// Checkpoint: the paper's canonical periodic applications are codes that
// "implement a periodic checkpoint for reliability constraints" with the
// interval set by Daly's optimum. This example builds a mix of
// checkpointing applications on the Intrepid model, shows how the shared
// platform MTBF turns into per-application checkpoint cadences, and
// compares schedulers on the resulting (highly synchronized) I/O load.
package main

import (
	"fmt"
	"log"

	iosched "repro"
)

func main() {
	machine := iosched.Intrepid()
	const (
		memPerNode = 0.25     // GiB checkpointed per node
		mtbf       = 4 * 3600 // platform MTBF in seconds
		wallTime   = 40000    // job length in seconds
	)

	sizes := []int{2048, 2048, 4096, 4096, 8192}
	var apps []*iosched.App
	for i, nodes := range sizes {
		// An application's failure rate scales with its allocation:
		// bigger jobs checkpoint more aggressively.
		appMTBF := float64(mtbf) * float64(machine.Nodes) / float64(nodes)
		app, err := iosched.CheckpointApp(machine, i, nodes, memPerNode, appMTBF, wallTime)
		if err != nil {
			log.Fatal(err)
		}
		apps = append(apps, app)
		delta := app.TotalVolume() / float64(len(app.Instances)) / machine.PeakAppBW(nodes)
		fmt.Printf("app %d: %5d nodes, checkpoint %6.0f GiB every %6.0f s (write takes %4.0f s alone)\n",
			i, nodes, app.Instances[0].Volume, app.Instances[0].Work, delta)
	}
	fmt.Println()

	for _, name := range []string{"fair-share", "RoundRobin", "Priority-MaxSysEff", "Priority-MinDilation"} {
		sched, err := iosched.SchedulerByName(name)
		if err != nil {
			log.Fatal(err)
		}
		clones := make([]*iosched.App, len(apps))
		for i, a := range apps {
			clones[i] = a.CloneWithID(a.ID)
		}
		res, err := iosched.Simulate(iosched.SimConfig{
			Platform:  machine.WithoutBB(),
			Scheduler: sched,
			Apps:      clones,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s SysEfficiency %6.2f%% (upper %5.2f%%)  Dilation %5.3f\n",
			name, res.Summary.SysEfficiency, res.Summary.UpperLimit, res.Summary.Dilation)
	}
}
