// Package examples holds runnable example programs. This smoke test is
// the only test here: every example must build and execute its default
// input to completion — examples that only ever compile rot silently
// (a renamed API keeps building through the facade until an example's
// logic path breaks at run time).
package examples

import (
	"context"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// examplePrograms lists every example directory; keep in sync with the
// subdirectories (the test fails on a stale entry, and TestAllListed
// fails on a missing one).
var examplePrograms = []string{
	"quickstart",
	"periodic",
	"checkpoint",
	"congestion",
	"vesta",
	"distributed",
}

// TestExamplesRun builds and executes each example with its built-in
// default input and requires exit status 0 and some stdout. The slowest
// examples (vesta, distributed) run in under a second; the overall
// budget is generous for loaded CI runners.
func TestExamplesRun(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}
	if runtime.GOOS == "js" || runtime.GOOS == "wasip1" {
		t.Skip("cannot exec subprocesses on this platform")
	}
	binDir := t.TempDir()
	for _, name := range examplePrograms {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(binDir, name)
			build := exec.Command("go", "build", "-o", bin, "./"+name)
			build.Dir = "."
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build ./%s: %v\n%s", name, err, out)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			run := exec.CommandContext(ctx, bin)
			out, err := run.CombinedOutput()
			if err != nil {
				t.Fatalf("%s exited with error: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("%s produced no output", name)
			}
		})
	}
}

// TestAllListed keeps examplePrograms in sync with the directory: a new
// example that is not in the list would silently skip the smoke test.
func TestAllListed(t *testing.T) {
	listed := map[string]bool{}
	for _, name := range examplePrograms {
		listed[name] = true
	}
	dirs, err := filepath.Glob("*/main.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, main := range dirs {
		dir := filepath.Dir(main)
		if !listed[dir] {
			t.Errorf("examples/%s has a main.go but is not in examplePrograms", dir)
		}
	}
	if len(dirs) != len(examplePrograms) {
		t.Errorf("%d example dirs, %d listed", len(dirs), len(examplePrograms))
	}
}
