// Congestion: reproduce the paper's headline result on one congested
// moment — the global I/O scheduler *without* burst buffers beats the
// production scheduler (max-min fair sharing) *with* burst buffers.
//
// The moment is drawn from the same seeded generator as Table 1: a
// Darshan-style application mix heavy enough to saturate Intrepid's file
// system, with the unobserved half of the machine reconstructed by
// replicating observed applications.
package main

import (
	"fmt"
	"log"

	iosched "repro"
)

func main() {
	moment := iosched.IntrepidMoments(1, 42)[0]
	fmt.Printf("congested moment %q: %d applications on %s\n\n",
		moment.Name, len(moment.Apps), moment.Platform)

	// The production baseline: fair sharing with burst buffers.
	base, err := iosched.Simulate(iosched.SimConfig{
		Platform:  moment.Platform,
		Scheduler: iosched.FairShare{},
		Apps:      moment.Apps,
		UseBB:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s  SysEff %6.2f%%  Dilation %5.3f   (burst buffers: peak %.0f GiB, full %.0fs)\n",
		"intrepid (fair+BB)", base.Summary.SysEfficiency, base.Summary.Dilation,
		base.BBPeakLevel, base.BBFullTime)

	// The paper's heuristics, without burst buffers.
	for _, name := range []string{
		"Priority-MaxSysEff", "Priority-MinMax-0.5", "Priority-MinDilation",
	} {
		sched, err := iosched.SchedulerByName(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := iosched.Simulate(iosched.SimConfig{
			Platform:  moment.Platform.WithoutBB(),
			Scheduler: sched,
			Apps:      moment.Apps,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s  SysEff %6.2f%%  Dilation %5.3f\n",
			name, res.Summary.SysEfficiency, res.Summary.Dilation)
	}
	fmt.Printf("\nupper limit for this mix: %.2f%%\n", base.Summary.UpperLimit)
}
