// Vesta: run the paper's Section 5 experiment end to end on the rank-level
// cluster emulator — a modified IOR benchmark whose process groups are
// separate applications coordinated by a scheduler thread — and compare
// the congested baseline against the global scheduler, per application.
package main

import (
	"fmt"
	"log"

	iosched "repro"
)

func main() {
	// The paper's most uneven scenario: 512/256/256/32 nodes.
	groups := []iosched.IORGroup{
		{ID: 0, Name: "ior-512n", Ranks: 512, Iterations: 20, Work: 2, BlockGiB: 0.1},
		{ID: 1, Name: "ior-256n", Ranks: 256, Iterations: 20, Work: 2, BlockGiB: 0.1},
		{ID: 2, Name: "ior-256n2", Ranks: 256, Iterations: 20, Work: 2, BlockGiB: 0.1},
		{ID: 3, Name: "ior-32n", Ranks: 32, Iterations: 20, Work: 2, BlockGiB: 0.1},
	}

	run := func(label string, cfg iosched.ClusterConfig) {
		res, err := iosched.Emulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s SysEff %6.2f%%  Dilation %5.3f  makespan %7.1f s  (%d messages)\n",
			label, res.Summary.SysEfficiency, res.Summary.Dilation, res.Makespan, res.Messages)
		for _, a := range res.Apps {
			fmt.Printf("    %-10s %4d nodes: dilation %5.3f\n", a.Name, a.Nodes, a.Dilation())
		}
	}

	vesta := iosched.Vesta()
	run("unmodified IOR", iosched.ClusterConfig{
		Platform: vesta, Mode: iosched.OriginalIOR, Apps: groups,
	})
	run("scheduler always-grant", iosched.ClusterConfig{
		Platform: vesta, Mode: iosched.AlwaysGrant, Apps: groups,
	})
	run("Priority-MaxSysEff", iosched.ClusterConfig{
		Platform: vesta, Mode: iosched.Scheduled,
		Policy: iosched.MaxSysEff().WithPriority(), Apps: groups,
	})
	run("Priority-MinDilation", iosched.ClusterConfig{
		Platform: vesta, Mode: iosched.Scheduled,
		Policy: iosched.MinDilation().WithPriority(), Apps: groups,
	})
}
