// Periodic: build a steady-state periodic schedule (Section 3.2 of the
// paper) for a set of checkpointing applications, using both insertion
// heuristics and the (1+ε) period search, and print the resulting
// timetable.
package main

import (
	"fmt"
	"log"

	iosched "repro"
)

func main() {
	// Four checkpointing applications on a 100-node machine: every w
	// seconds of computation they write a checkpoint of vol GiB.
	machine := &iosched.Platform{Name: "demo", Nodes: 100, NodeBW: 1, TotalBW: 10}
	apps := []*iosched.App{
		iosched.NewPeriodicApp(0, 20, 35, 24, 1),
		iosched.NewPeriodicApp(1, 30, 275, 288, 1),
		iosched.NewPeriodicApp(2, 25, 90, 35, 1),
		iosched.NewPeriodicApp(3, 25, 75, 52, 1),
	}

	for _, heuristic := range []string{iosched.InsertThrou, iosched.InsertCong} {
		res, err := iosched.SearchPeriod(machine, apps, heuristic, 2000, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: tried %d periods, best T = %.1f s\n",
			heuristic, res.Tried, res.Schedule.T)
		fmt.Printf("  SysEfficiency %.2f%%  Dilation %.3f\n",
			res.BestSysEff, res.BestDilation)
		if err := res.Schedule.Validate(); err != nil {
			log.Fatalf("invalid schedule: %v", err)
		}
		fmt.Println(res.Schedule)
	}
}
