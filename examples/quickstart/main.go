// Quickstart: simulate three applications competing for a shared parallel
// file system, compare a neutral fair-share scheduler with the paper's
// MaxSysEff global heuristic, and draw the resulting schedule as a Gantt
// chart ('#' compute, '=' transfer, '.' stalled).
package main

import (
	"fmt"
	"log"
	"os"

	iosched "repro"
)

func main() {
	// A small machine: 100 nodes, 1 GiB/s I/O card per node, 10 GiB/s
	// file system.
	machine := &iosched.Platform{
		Name:    "demo",
		Nodes:   100,
		NodeBW:  1,
		TotalBW: 10,
	}

	// Three periodic applications (compute seconds, I/O GiB, instances).
	// Their combined card bandwidth (30+40+20 = 90 GiB/s) dwarfs the file
	// system, so every simultaneous burst congests.
	apps := func() []*iosched.App {
		return []*iosched.App{
			iosched.NewPeriodicApp(0, 30, 100, 120, 6),
			iosched.NewPeriodicApp(1, 40, 80, 100, 8),
			iosched.NewPeriodicApp(2, 20, 150, 200, 4),
		}
	}

	for _, sched := range []iosched.Scheduler{
		iosched.FairShare{},
		iosched.MaxSysEff(),
		iosched.MinDilation(),
	} {
		trace := &iosched.ExecTrace{}
		res, err := iosched.Simulate(iosched.SimConfig{
			Platform:  machine,
			Scheduler: sched,
			Apps:      apps(),
			Trace:     trace,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s  SysEfficiency %6.2f%% (upper %5.2f%%)  Dilation %5.3f  makespan %7.1f s\n",
			sched.Name(), res.Summary.SysEfficiency, res.Summary.UpperLimit,
			res.Summary.Dilation, res.Summary.Makespan)
		for _, a := range res.Apps {
			fmt.Printf("    app %d (%2d nodes): finished %7.1f s, slowdown %.3f\n",
				a.ID, a.Nodes, a.Finish, a.Dilation())
		}
		t0, t1 := trace.Span()
		if err := iosched.RenderGantt(os.Stdout, trace.GanttRows(nil), t0, t1, 72); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
