// Distributed: run the global I/O scheduler as a real TCP daemon and
// three IOR-like client applications against it, in one process. Each
// client loops compute → request → transfer-at-granted-rate → complete,
// with wall-clock time standing in for compute and transfer durations
// (1 virtual second = 1 millisecond here).
//
// This is the deployment shape of the paper's prototype: the scheduler
// thread of the modified IOR benchmark promoted to a machine-level
// service (see cmd/ioschedd for the standalone daemon).
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	iosched "repro"
	"repro/internal/server"
)

const timeScale = 1e-3 // wall seconds per virtual second

type appSpec struct {
	id     int
	nodes  int
	work   float64 // virtual seconds of compute per iteration
	volume float64 // GiB per iteration
	iters  int
}

func main() {
	// A small machine: B = 10 GiB/s, b = 1 GiB/s per node.
	srv, err := server.New(server.Config{
		Policy:  iosched.MaxSysEff().WithPriority(),
		TotalBW: 10,
		NodeBW:  1,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // exits on Close
	defer srv.Close()
	addr := ln.Addr().String()
	fmt.Printf("scheduler daemon on %s\n\n", addr)

	specs := []appSpec{
		{id: 1, nodes: 8, work: 100, volume: 160, iters: 4},
		{id: 2, nodes: 8, work: 150, volume: 120, iters: 4},
		{id: 3, nodes: 4, work: 80, volume: 60, iters: 5},
	}
	var wg sync.WaitGroup
	for _, spec := range specs {
		spec := spec
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := runApp(addr, spec); err != nil {
				log.Printf("app %d: %v", spec.id, err)
			}
		}()
	}
	wg.Wait()
	fmt.Printf("\nscheduler made %d allocation decisions\n", srv.Decisions())
}

func runApp(addr string, spec appSpec) error {
	c, err := server.Dial(addr, spec.id, spec.nodes)
	if err != nil {
		return err
	}
	defer c.Close()

	cardBW := float64(spec.nodes) // nodes × b
	ideal := spec.work + spec.volume/min(cardBW, 10)
	start := time.Now()
	for i := 0; i < spec.iters; i++ {
		sleepVirtual(spec.work)

		if err := c.RequestIO(spec.volume, spec.work, ideal); err != nil {
			return err
		}
		remaining := spec.volume
		for remaining > 1e-9 {
			bw, err := c.WaitForBandwidth(10 * time.Second)
			if err != nil {
				return err
			}
			// Transfer until done or the grant changes.
			step := remaining / bw // virtual seconds at this rate
			if !transferFor(c, step, bw, &remaining) {
				continue // re-granted mid-transfer; loop with new rate
			}
		}
		if err := c.CompleteIO(); err != nil {
			return err
		}
		fmt.Printf("app %d finished iteration %d/%d at +%.0f ms\n",
			spec.id, i+1, spec.iters, time.Since(start).Seconds()*1e3)
	}
	return nil
}

// transferFor moves volume at bw for up to step virtual seconds, watching
// for grant changes; it reports whether the transfer ran to completion of
// the step.
func transferFor(c *server.Client, step, bw float64, remaining *float64) bool {
	timer := time.NewTimer(time.Duration(step * timeScale * float64(time.Second)))
	defer timer.Stop()
	began := time.Now()
	select {
	case <-timer.C:
		*remaining -= step * bw
		if *remaining < 0 {
			*remaining = 0
		}
		return true
	case newBW, ok := <-c.Grants():
		elapsed := time.Since(began).Seconds() / timeScale
		*remaining -= elapsed * bw
		if *remaining < 0 {
			*remaining = 0
		}
		_ = newBW
		_ = ok
		return false
	}
}

func sleepVirtual(d float64) {
	time.Sleep(time.Duration(d * timeScale * float64(time.Second)))
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
