package main

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// telemetryScenarios maps the -telemetry argument to a Figure 6 panel.
var telemetryScenarios = map[string]workload.Fig6Kind{
	"fig6a": workload.Fig6A,
	"fig6b": workload.Fig6B,
	"fig6c": workload.Fig6C,
}

// runTelemetryDump simulates one replicate of a paper scenario with a
// telemetry probe attached and writes the congestion time series to w:
// one CSV row per sample (format "csv"), or the full snapshot — points,
// histograms and the full-run series aggregates — as JSON.
func runTelemetryDump(scenario, policy string, seed int64, sampleS float64, format string, w io.Writer) error {
	kind, ok := telemetryScenarios[scenario]
	if !ok {
		return fmt.Errorf("unknown telemetry scenario %q (have fig6a, fig6b, fig6c)", scenario)
	}
	pol, err := core.ByName(policy)
	if err != nil {
		return err
	}
	cfg := workload.Fig6Config(kind, seed)
	apps, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	probe := &telemetry.Probe{MinInterval: sampleS}
	res, err := sim.Run(sim.Config{
		Platform:  cfg.Platform,
		Scheduler: pol,
		Apps:      apps,
		Telemetry: probe,
	})
	if err != nil {
		return err
	}

	switch format {
	case "csv":
		return writeTelemetryCSV(w, res.Telemetry)
	case "json":
		full := telemetry.Window{Start: res.Telemetry.Points[0].Time, End: res.Summary.Makespan}
		aggs := make(map[string]telemetry.SeriesStats, len(telemetry.SeriesNames()))
		for _, name := range telemetry.SeriesNames() {
			s, err := res.Telemetry.Aggregate(name, full)
			if err != nil {
				return err
			}
			aggs[name] = s
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Scenario   string                           `json:"scenario"`
			Policy     string                           `json:"policy"`
			Seed       int64                            `json:"seed"`
			Summary    any                              `json:"summary"`
			Aggregates map[string]telemetry.SeriesStats `json:"aggregates"`
			Telemetry  *telemetry.Telemetry             `json:"telemetry"`
		}{scenario, pol.Name(), seed, res.Summary, aggs, res.Telemetry})
	default:
		return fmt.Errorf("unknown telemetry format %q (have csv, json)", format)
	}
}

// writeTelemetryCSV renders the point series as CSV, one column per
// series in telemetry.SeriesNames order.
func writeTelemetryCSV(w io.Writer, tel *telemetry.Telemetry) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"t"}, telemetry.SeriesNames()...)); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, pt := range tel.Points {
		// Column order matches telemetry.SeriesNames.
		row := []string{
			g(pt.Time), g(pt.Utilization), g(pt.Backlog), strconv.Itoa(pt.Candidates),
			g(pt.BBLevel), g(pt.Jain), g(pt.MaxStretch), g(pt.MeanStretch),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
