// Command iosim reproduces the paper's tables and figures. Each
// experiment is identified by its paper artifact id:
//
//	iosim -list
//	iosim -run table1
//	iosim -run all -quick
//	iosim -run fig15 -csv out/
//
// Results are rendered as ASCII tables/series on stdout and optionally
// exported as CSV files for external plotting.
//
// For performance work, -cpuprofile and -memprofile write pprof
// profiles covering the selected experiments (see docs/performance.md):
//
//	iosim -run fig6a -cpuprofile cpu.out
//	go tool pprof cpu.out
//
// With -telemetry, iosim runs one replicate of a paper scenario with a
// telemetry probe attached (internal/telemetry) and dumps the congestion
// time series — utilization, backlog, candidate count, Jain fairness,
// stretch — to stdout as CSV or JSON (see docs/observability.md):
//
//	iosim -telemetry fig6a -telemetry-policy Priority-MaxSysEff > series.csv
//	iosim -telemetry fig6b -telemetry-format json | jq .aggregates
//
// With -run incident <bundle.json>, iosim replays an incident bundle
// dumped by the ioschedd flight recorder (internal/health): it prints
// the capture metadata, detector verdicts and alert timeline, then
// re-runs the anomaly detectors offline over the bundle's embedded
// telemetry and reports whether the recorded firing sequence reproduces.
//
//	iosim -run incident incident-t1234.000-alert-stall.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/experiments"
)

func main() {
	var (
		run        = flag.String("run", "", "experiment id to run, or 'all'")
		list       = flag.Bool("list", false, "list available experiments")
		quick      = flag.Bool("quick", false, "reduced replicates/iterations for a fast pass")
		seed       = flag.Int64("seed", 0, "seed offset for all generators")
		replicates = flag.Int("replicates", 0, "override replicate count (Figure 6/7 studies)")
		workers    = flag.Int("workers", 0, "max parallel replicates (default GOMAXPROCS)")
		csvDir     = flag.String("csv", "", "directory to write CSV exports into")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile at exit to this file")

		telemetry       = flag.String("telemetry", "", "dump the congestion time series of one scenario replicate (fig6a, fig6b, fig6c) to stdout")
		telemetryPolicy = flag.String("telemetry-policy", "MaxSysEff", "policy for the -telemetry run")
		telemetrySample = flag.Float64("telemetry-sample", 0, "minimum simulated seconds between -telemetry samples (0 samples every decision point)")
		telemetryFormat = flag.String("telemetry-format", "csv", "-telemetry output format: csv or json")

		version = flag.Bool("version", false, "print build metadata and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "iosim")
		return
	}

	if *telemetry != "" {
		err := runTelemetryDump(*telemetry, *telemetryPolicy, *seed, *telemetrySample, *telemetryFormat, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iosim: telemetry: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// The incident pseudo-experiment replays a flight-recorder bundle
	// (see docs/observability.md) instead of a paper artifact.
	if *run == "incident" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "iosim: usage: iosim -run incident <bundle.json>")
			os.Exit(2)
		}
		if err := experiments.RunIncident(flag.Arg(0), os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "iosim: incident: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %-10s %s\n", e.ID, "("+e.Paper+")", e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iosim: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "iosim: starting CPU profile: %v\n", err)
			os.Exit(2)
		}
	}

	cfg := experiments.Config{
		Quick:      *quick,
		Seed:       *seed,
		Replicates: *replicates,
		Workers:    *workers,
	}

	var ids []string
	if *run == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*run, ",")
	}

	exit := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := experiments.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "iosim: unknown experiment %q (try -list)\n", id)
			exit = 2
			continue
		}
		start := time.Now()
		doc, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iosim: %s: %v\n", id, err)
			exit = 1
			continue
		}
		fmt.Printf("# %s finished in %.1fs\n\n", id, time.Since(start).Seconds())
		if err := doc.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "iosim: rendering %s: %v\n", id, err)
			exit = 1
		}
		if *csvDir != "" {
			if err := doc.ExportCSV(*csvDir); err != nil {
				fmt.Fprintf(os.Stderr, "iosim: exporting %s: %v\n", id, err)
				exit = 1
			}
		}
	}
	// Explicit teardown, not defers: os.Exit below would skip them.
	if *cpuProf != "" {
		pprof.StopCPUProfile()
	}
	if *memProf != "" {
		writeMemProfile(*memProf)
	}
	os.Exit(exit)
}

// writeMemProfile captures the post-run heap to path, GCing first so
// the profile shows retained memory rather than garbage.
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iosim: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "iosim: writing heap profile: %v\n", err)
	}
}
