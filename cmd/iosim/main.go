// Command iosim reproduces the paper's tables and figures. Each
// experiment is identified by its paper artifact id:
//
//	iosim -list
//	iosim -run table1
//	iosim -run all -quick
//	iosim -run fig15 -csv out/
//
// Results are rendered as ASCII tables/series on stdout and optionally
// exported as CSV files for external plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		run        = flag.String("run", "", "experiment id to run, or 'all'")
		list       = flag.Bool("list", false, "list available experiments")
		quick      = flag.Bool("quick", false, "reduced replicates/iterations for a fast pass")
		seed       = flag.Int64("seed", 0, "seed offset for all generators")
		replicates = flag.Int("replicates", 0, "override replicate count (Figure 6/7 studies)")
		workers    = flag.Int("workers", 0, "max parallel replicates (default GOMAXPROCS)")
		csvDir     = flag.String("csv", "", "directory to write CSV exports into")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %-10s %s\n", e.ID, "("+e.Paper+")", e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	cfg := experiments.Config{
		Quick:      *quick,
		Seed:       *seed,
		Replicates: *replicates,
		Workers:    *workers,
	}

	var ids []string
	if *run == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*run, ",")
	}

	exit := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := experiments.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "iosim: unknown experiment %q (try -list)\n", id)
			exit = 2
			continue
		}
		start := time.Now()
		doc, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iosim: %s: %v\n", id, err)
			exit = 1
			continue
		}
		fmt.Printf("# %s finished in %.1fs\n\n", id, time.Since(start).Seconds())
		if err := doc.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "iosim: rendering %s: %v\n", id, err)
			exit = 1
		}
		if *csvDir != "" {
			if err := doc.ExportCSV(*csvDir); err != nil {
				fmt.Fprintf(os.Stderr, "iosim: exporting %s: %v\n", id, err)
				exit = 1
			}
		}
	}
	os.Exit(exit)
}
