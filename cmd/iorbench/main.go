// Command iorbench runs a single Vesta scenario of the paper's Section 5
// experiment through the rank-level cluster emulator:
//
//	iorbench -scenario 512/256/256/32 -policy Priority-MaxSysEff
//	iorbench -scenario 256/256 -mode original -bb
//	iorbench -scenario 512 -mode always-grant
//
// It prints the per-application outcomes and the run objectives.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ior"
)

func main() {
	var (
		scenario = flag.String("scenario", "256/256", "node counts of the process groups, e.g. 512/256/32")
		mode     = flag.String("mode", "scheduled", "benchmark mode: original, always-grant, scheduled")
		policy   = flag.String("policy", "Priority-MaxSysEff", "scheduling policy for scheduled mode")
		useBB    = flag.Bool("bb", false, "stage writes through the burst buffers")
		iters    = flag.Int("iterations", 20, "iterations per group")
		work     = flag.Float64("work", 2, "compute seconds per iteration")
		block    = flag.Float64("block", 0.1, "per-rank write size per iteration (GiB)")
		seed     = flag.Int64("seed", 0, "jitter seed")
		version  = flag.Bool("version", false, "print build metadata and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "iorbench")
		return
	}

	sc, err := ior.ParseScenario(*scenario)
	if err != nil {
		fatal(err)
	}
	v := ior.Variant{UseBB: *useBB}
	switch *mode {
	case "original":
		v.Mode = cluster.OriginalIOR
		v.Label = "original IOR"
	case "always-grant":
		v.Mode = cluster.AlwaysGrant
		v.Label = "modified IOR, always grant"
	case "scheduled":
		v.Mode = cluster.Scheduled
		v.Label = *policy
		pol, err := core.ByName(*policy)
		if err != nil {
			fatal(err)
		}
		v.Policy = pol
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	params := ior.Params{Iterations: *iters, Work: *work, BlockGiB: *block}
	res, err := ior.Run(sc, v, params, *seed)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("scenario %s under %s (BB=%v)\n\n", sc.Name, v.Label, *useBB)
	fmt.Printf("%-14s %8s %10s %10s %10s\n", "application", "nodes", "finish(s)", "eff", "dilation")
	for _, a := range res.Apps {
		fmt.Printf("%-14s %8d %10.2f %10.3f %10.3f\n",
			a.Name, a.Nodes, a.Finish, a.AchievedEff(), a.Dilation())
	}
	fmt.Printf("\nmakespan        %10.2f s\n", res.Makespan)
	fmt.Printf("SysEfficiency   %10.2f %% (upper limit %.2f%%)\n",
		res.Summary.SysEfficiency, res.Summary.UpperLimit)
	fmt.Printf("Dilation        %10.3f\n", res.Summary.Dilation)
	fmt.Printf("messages        %10d\n", res.Messages)
	if res.SchedRequests > 0 {
		fmt.Printf("sched requests  %10d (decisions %d)\n", res.SchedRequests, res.SchedDecisions)
	}
	if *useBB {
		fmt.Printf("BB peak level   %10.1f GiB (full for %.1f s)\n", res.BBPeakLevel, res.BBFullTime)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iorbench:", err)
	os.Exit(1)
}
