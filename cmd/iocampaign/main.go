// Command iocampaign runs declarative scenario-sweep campaigns: a JSON
// spec declares a grid of (platform × scheduler × workload × seed)
// simulation cells, and the engine fans them out over a worker pool with
// a content-addressed result cache, so growing a campaign re-simulates
// only the new cells.
//
//	iocampaign run -spec sweep.json -cache .iocache -out results/
//	iocampaign resume -spec sweep.json -cache .iocache
//	iocampaign list -cache .iocache
//	iocampaign diff -a results/a.json -b results/b.json
//
// See docs/campaign.md for the spec file format.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/campaign"
	"repro/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:], false)
	case "resume":
		err = cmdRun(os.Args[2:], true)
	case "list":
		err = cmdList(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage(os.Stdout)
		return
	case "-version", "--version", "version":
		buildinfo.Print(os.Stdout, "iocampaign")
		return
	default:
		fmt.Fprintf(os.Stderr, "iocampaign: unknown subcommand %q\n\n", os.Args[1])
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "iocampaign: %v\n", err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: iocampaign <subcommand> [flags]

subcommands:
  run     expand a spec into its cell grid and execute it (cache-aware)
  resume  continue a previously started campaign (requires its cache)
  list    show the campaigns recorded in a cache directory
  diff    compare the group summaries of two results files

run 'iocampaign <subcommand> -h' for flags.
`)
}

func cmdRun(args []string, resume bool) error {
	name := "run"
	if resume {
		name = "resume"
	}
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	var (
		specPath = fs.String("spec", "", "campaign spec file (JSON, required)")
		cacheDir = fs.String("cache", "", "result cache directory (required for resume)")
		workers  = fs.Int("workers", 0, "max parallel shards (default GOMAXPROCS)")
		outDir   = fs.String("out", "", "directory for <name>.results.json and <name>.groups.csv")
		quiet    = fs.Bool("quiet", false, "suppress per-cell progress lines")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *specPath == "" {
		return fmt.Errorf("%s: -spec is required", name)
	}
	spec, err := campaign.Load(*specPath)
	if err != nil {
		return err
	}

	var cache *campaign.Cache
	if *cacheDir != "" {
		if cache, err = campaign.NewCache(*cacheDir); err != nil {
			return err
		}
	}
	if resume {
		if cache == nil {
			return fmt.Errorf("resume: -cache is required")
		}
		st, ok, err := cache.LoadState(spec.Name)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("resume: campaign %q has never run against cache %s (use run)", spec.Name, *cacheDir)
		}
		hash, err := spec.Hash()
		if err != nil {
			return err
		}
		if st.SpecHash != hash {
			fmt.Fprintf(os.Stderr, "iocampaign: spec changed since the last run (%d/%d cells were complete); unchanged cells will be reused\n",
				st.Completed, st.Cells)
		} else {
			fmt.Fprintf(os.Stderr, "iocampaign: resuming %q: %d/%d cells complete\n", spec.Name, st.Completed, st.Cells)
		}
	}

	var log io.Writer
	if !*quiet {
		log = os.Stderr
	}
	start := time.Now()
	res, stats, err := (&campaign.Runner{Spec: spec, Cache: cache, Workers: *workers, Log: log}).Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "iocampaign: %d cells (%d simulated in %d shards, %d cache hits) in %.1fs\n",
		stats.Cells, stats.Simulated, stats.Shards, stats.CacheHits, time.Since(start).Seconds())

	if err := res.Document().Render(os.Stdout); err != nil {
		return err
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		jsonPath := filepath.Join(*outDir, spec.Name+".results.json")
		if err := writeTo(jsonPath, res.WriteJSON); err != nil {
			return err
		}
		csvPath := filepath.Join(*outDir, spec.Name+".groups.csv")
		if err := writeTo(csvPath, res.WriteGroupsCSV); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "iocampaign: wrote %s and %s\n", jsonPath, csvPath)
	}
	return nil
}

func writeTo(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	cacheDir := fs.String("cache", "", "result cache directory (required)")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *cacheDir == "" {
		return fmt.Errorf("list: -cache is required")
	}
	cache, err := campaign.NewCache(*cacheDir)
	if err != nil {
		return err
	}
	states, err := cache.States()
	if err != nil {
		return err
	}
	entries, err := cache.Len()
	if err != nil {
		return err
	}
	fmt.Printf("cache %s: %d cell results\n", *cacheDir, entries)
	if len(states) == 0 {
		fmt.Println("no campaigns recorded")
		return nil
	}
	fmt.Printf("%-24s  %8s  %10s  %s\n", "campaign", "cells", "complete", "spec hash")
	for _, st := range states {
		fmt.Printf("%-24s  %8d  %9d%%  %.16s\n",
			st.Name, st.Cells, percent(st.Completed, st.Cells), st.SpecHash)
	}
	return nil
}

func percent(done, total int) int {
	if total == 0 {
		return 0
	}
	return 100 * done / total
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	var (
		aPath = fs.String("a", "", "baseline results JSON (required)")
		bPath = fs.String("b", "", "comparison results JSON (required)")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *aPath == "" || *bPath == "" {
		return fmt.Errorf("diff: -a and -b are required")
	}
	a, err := campaign.ReadResults(*aPath)
	if err != nil {
		return err
	}
	b, err := campaign.ReadResults(*bPath)
	if err != nil {
		return err
	}

	tbl := &report.Table{
		Title:   fmt.Sprintf("%s (a) vs %s (b)", a.Name, b.Name),
		Columns: []string{"SysEff a", "SysEff b", "Δ", "Dilation a", "Dilation b", "Δ"},
		Notes:   []string{"groups only present on one side are listed with '-' cells"},
	}
	seen := map[campaign.GroupKey]bool{}
	for _, ga := range a.Groups {
		seen[ga.GroupKey] = true
		gb, ok := b.Group(ga.Platform, ga.Workload, ga.Scheduler)
		if !ok {
			tbl.AddRow(ga.GroupKey.String(), ga.SysEfficiency, math.NaN(), math.NaN(),
				ga.Dilation, math.NaN(), math.NaN())
			continue
		}
		tbl.AddRow(ga.GroupKey.String(),
			ga.SysEfficiency, gb.SysEfficiency, gb.SysEfficiency-ga.SysEfficiency,
			ga.Dilation, gb.Dilation, gb.Dilation-ga.Dilation)
	}
	for _, gb := range b.Groups {
		if !seen[gb.GroupKey] {
			tbl.AddRow(gb.GroupKey.String(), math.NaN(), gb.SysEfficiency, math.NaN(),
				math.NaN(), gb.Dilation, math.NaN())
		}
	}
	return tbl.Render(os.Stdout)
}
