// Command iotwin is the what-if CLI of the digital-twin layer
// (internal/twin): it forecasts a system's future under a panel of
// candidate scheduling policies, either from a live daemon's exported
// snapshot or from a paper scenario fast-forwarded to a chosen instant.
//
//	# forecast a daemon snapshot (ioschedd -metrics serves /snapshot)
//	curl -s http://localhost:9450/snapshot > snap.json
//	iotwin -snapshot snap.json -policies MaxSysEff,RoundRobin,fair-share
//
//	# what-if over a paper scenario: snapshot fig6a at t=2000 and compare
//	iotwin -scenario fig6a -seed 7 -policy MaxSysEff -at 2000 \
//	       -policies MaxSysEff,MinDilation,fair-share -horizon 600
//
// The forecast table reports, per policy, the predicted max/mean stretch
// (the paper's Dilation objective), the SysEfficiency estimate at the
// horizon, burst-buffer pressure, and whether the workload completes
// within the horizon. -json emits the raw forecasts instead; -apps adds
// the per-application finish predictions.
//
// With -explain, iotwin runs the counterfactual replay engine
// (twin.Explain over internal/dectrace) instead of a forecast: it records
// every allocation decision from the snapshot forward under the incumbent
// -policy, forks the run at each decision point with every -policies
// candidate forced for that single decision, and ranks the decisions by
// how much the best alternative would have improved the final stretch.
//
//	iotwin -scenario fig6a -seed 7 -policy fair-share -at 1000 \
//	       -explain -topk 5 -max-points 24
//
// With -sparkline, the forecast table is followed by an ASCII panel of
// telemetry sparklines (internal/telemetry): the congestion series
// observed up to the snapshot instant, against the series each candidate
// policy is forecast to produce from it (see docs/observability.md):
//
//	iotwin -scenario fig6a -at 2000 -policies MaxSysEff,fair-share -sparkline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/twin"
	"repro/internal/workload"
)

func main() {
	var (
		snapPath = flag.String("snapshot", "", "daemon snapshot JSON file ('-' for stdin)")
		scenario = flag.String("scenario", "", "paper scenario to what-if (fig6a, fig6b, fig6c)")
		seed     = flag.Int64("seed", 7, "scenario seed")
		policy   = flag.String("policy", "Priority-MaxSysEff", "policy running before the snapshot (scenario mode)")
		at       = flag.Float64("at", 0, "scenario instant to snapshot at (seconds; 0 = 40% of the makespan)")
		policies = flag.String("policies", "MaxSysEff,Priority-MaxSysEff,RoundRobin,MinDilation,fair-share",
			"comma-separated candidate policy panel")
		horizon = flag.Float64("horizon", 0, "forecast horizon in seconds (0 = to completion)")
		machine = flag.String("machine", "", "platform preset for snapshot mode (intrepid, mira, vesta); empty synthesizes one")
		workers = flag.Int("workers", 0, "parallel forecasts (default GOMAXPROCS)")
		asJSON  = flag.Bool("json", false, "emit raw forecast JSON")
		showApp = flag.Bool("apps", false, "include per-application predictions in the table")

		explain   = flag.Bool("explain", false, "counterfactual replay: rank the costliest decisions from the snapshot forward instead of forecasting")
		topK      = flag.Int("topk", 5, "how many costliest decisions to report (-explain)")
		maxPoints = flag.Int("max-points", 32, "how many recorded decision points to fork (-explain)")

		sparkline  = flag.Bool("sparkline", false, "append an ASCII sparkline panel: observed congestion series up to the snapshot vs each policy's forecast series")
		sparkWidth = flag.Int("spark-width", 64, "sparkline width in characters")

		version = flag.Bool("version", false, "print build metadata and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "iotwin")
		return
	}

	panel := splitList(*policies)
	if len(panel) == 0 {
		fatal(fmt.Errorf("empty -policies"))
	}

	var (
		p    *platform.Platform
		apps []*platform.App
		snap *sim.Snapshot
		err  error
	)
	switch {
	case *snapPath != "" && *scenario != "":
		fatal(fmt.Errorf("-snapshot and -scenario are mutually exclusive"))
	case *snapPath != "":
		p, apps, snap, err = fromSnapshotFile(*snapPath, *machine)
	case *scenario != "":
		p, apps, snap, err = fromScenario(*scenario, *seed, *policy, *at)
	default:
		fatal(fmt.Errorf("need -snapshot <file> or -scenario <fig6a|fig6b|fig6c>"))
	}
	if err != nil {
		fatal(err)
	}

	if *explain {
		runExplain(p, apps, snap, *policy, panel, *topK, *maxPoints, *workers, *asJSON)
		return
	}

	eng, err := twin.New(twin.Config{Platform: p, Horizon: *horizon, Workers: *workers})
	if err != nil {
		fatal(err)
	}
	forecasts, err := eng.Forecast(apps, snap, panel)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(forecasts); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("forecast from t=%.1f s over %d application(s) on %s (%d policies)\n\n",
		snap.Time, len(apps), p.Name, len(forecasts))
	fmt.Printf("%-24s %6s %10s %10s %10s %10s %8s\n",
		"policy", "done", "until", "maxStretch", "meanStr", "sysEff%", "events")
	for _, f := range forecasts {
		if f.Err != "" {
			fmt.Printf("%-24s  FAILED: %s\n", f.Policy, f.Err)
			continue
		}
		fmt.Printf("%-24s %6v %10.1f %10.3f %10.3f %10.2f %8d\n",
			f.Policy, f.Done, f.Until, f.MaxStretch, f.MeanStretch, f.SysEfficiency, f.Events)
		if *showApp {
			for _, a := range f.Apps {
				fmt.Printf("    app %-4d %-12s %5d nodes  finish %10.1f  stretch %7.3f  done %v\n",
					a.ID, a.Name, a.Nodes, a.Finish, a.Stretch, a.Done)
			}
		}
	}

	if *sparkline {
		err := renderSparklines(p, apps, snap, *policy, panel, *horizon, *sparkWidth, *scenario != "", os.Stdout)
		if err != nil {
			fatal(err)
		}
	}
}

// runExplain runs the counterfactual replay engine from the snapshot
// forward under the incumbent policy and prints the costliest decisions.
func runExplain(p *platform.Platform, apps []*platform.App, snap *sim.Snapshot, policy string, panel []string, topK, maxPoints, workers int, asJSON bool) {
	sched, err := core.ByName(policy)
	if err != nil {
		fatal(err)
	}
	ex, err := twin.Explain(twin.ExplainConfig{
		Sim:       sim.Config{Platform: p, Scheduler: sched, Apps: apps},
		From:      snap,
		Panel:     panel,
		TopK:      topK,
		MaxPoints: maxPoints,
		Workers:   workers,
	})
	if err != nil {
		fatal(err)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ex); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("explain %s from t=%.1f s: %d decision points, %d forked, %d forks run\n",
		ex.Policy, snap.Time, ex.Points, ex.Forked, ex.ForksRun)
	fmt.Printf("base: dilation %.3f, sysEff %.2f%%\n\n", ex.BaseDilation, ex.BaseSysEff)
	if len(ex.Costliest) == 0 {
		fmt.Println("no forkable decisions (the policy never had a real choice)")
		return
	}
	fmt.Printf("%6s %10s %-22s %-20s %10s %10s\n",
		"seq", "t", "kind", "bestAlt", "dilDelta", "effDelta")
	for _, imp := range ex.Costliest {
		fmt.Printf("%6d %10.1f %-22s %-20s %+10.3f %+10.2f\n",
			imp.Seq, imp.Time, imp.Kind, imp.BestPolicy, imp.DilationDelta, imp.SysEffDelta)
	}
}

// fromSnapshotFile loads a daemon SystemSnapshot and converts it.
func fromSnapshotFile(path, machine string) (*platform.Platform, []*platform.App, *sim.Snapshot, error) {
	var b []byte
	var err error
	if path == "-" {
		b, err = io.ReadAll(os.Stdin)
	} else {
		b, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	var sys server.SystemSnapshot
	if err := json.Unmarshal(b, &sys); err != nil {
		return nil, nil, nil, fmt.Errorf("parsing snapshot %s: %w", path, err)
	}
	var p *platform.Platform
	if machine != "" {
		preset, ok := platform.Presets()[machine]
		if !ok {
			return nil, nil, nil, fmt.Errorf("unknown machine %q", machine)
		}
		p = preset.WithoutBB()
	}
	conv, err := twin.FromSystem(&sys, p)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(conv.Skipped) > 0 {
		fmt.Fprintf(os.Stderr, "iotwin: %d session(s) not forecastable (no profile, no transfer): %v\n",
			len(conv.Skipped), conv.Skipped)
	}
	return conv.Platform, conv.Apps, conv.Snapshot, nil
}

// fromScenario generates a paper workload, runs it under the incumbent
// policy and snapshots it at the requested instant.
func fromScenario(name string, seed int64, policy string, at float64) (*platform.Platform, []*platform.App, *sim.Snapshot, error) {
	kinds := map[string]workload.Fig6Kind{
		"fig6a": workload.Fig6A, "fig6b": workload.Fig6B, "fig6c": workload.Fig6C,
	}
	kind, ok := kinds[name]
	if !ok {
		return nil, nil, nil, fmt.Errorf("unknown scenario %q (want fig6a, fig6b or fig6c)", name)
	}
	wcfg := workload.Fig6Config(kind, seed)
	apps, err := workload.Generate(wcfg)
	if err != nil {
		return nil, nil, nil, err
	}
	sched, err := core.ByName(policy)
	if err != nil {
		return nil, nil, nil, err
	}
	p := wcfg.Platform.WithoutBB()
	cfg := sim.Config{Platform: p, Scheduler: sched, Apps: apps}
	if at <= 0 {
		full, err := sim.Run(cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		at = 0.4 * full.Summary.Makespan
	}
	snap, err := sim.RunToSnapshot(cfg, at)
	if err != nil {
		return nil, nil, nil, err
	}
	return p, apps, snap, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iotwin:", err)
	os.Exit(1)
}
