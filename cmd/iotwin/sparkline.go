package main

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// sparkSeries is the subset of telemetry series the panel renders.
var sparkSeries = []string{"util", "backlog", "candidates", "max_stretch"}

// renderSparklines prints the forecast-vs-observed telemetry panel: the
// congestion series of the history leading up to the snapshot (scenario
// mode only — a daemon snapshot carries no history), then the series
// each candidate policy is forecast to produce from the snapshot
// forward. Every run re-simulates with a telemetry probe attached, so
// the panel costs one extra simulation per row block.
func renderSparklines(p *platform.Platform, apps []*platform.App, snap *sim.Snapshot, incumbent string, panel []string, horizon float64, width int, haveHistory bool, w io.Writer) error {
	if haveHistory {
		sched, err := core.ByName(incumbent)
		if err != nil {
			return err
		}
		probe := &telemetry.Probe{}
		_, err = sim.RunToSnapshot(sim.Config{
			Platform: p, Scheduler: sched, Apps: apps, Telemetry: probe,
		}, snap.Time)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nobserved under %s over [0, %.1f]:\n", sched.Name(), snap.Time)
		writeSparkBlock(w, probe.Snapshot(), width)
	} else {
		fmt.Fprintf(w, "\n(no observed series: a daemon snapshot carries no history)\n")
	}

	until := math.Inf(1)
	untilLabel := "completion"
	if horizon > 0 {
		until = snap.Time + horizon
		untilLabel = fmt.Sprintf("t=%.1f", until)
	}
	for _, name := range panel {
		sched, err := core.ByName(name)
		if err != nil {
			return err
		}
		s := snap.Clone()
		// Same what-if semantics as twin.Forecast: the candidate re-shares
		// bandwidth at the resume instant instead of inheriting the
		// incumbent's grants.
		s.RedecideOnResume = true
		probe := &telemetry.Probe{}
		_, err = sim.ResumeToSnapshot(sim.Config{
			Platform: p, Scheduler: sched, Apps: apps, Telemetry: probe,
		}, s, until)
		if err != nil {
			fmt.Fprintf(w, "\nforecast under %s: FAILED: %v\n", sched.Name(), err)
			continue
		}
		fmt.Fprintf(w, "\nforecast under %s from t=%.1f to %s:\n", sched.Name(), snap.Time, untilLabel)
		writeSparkBlock(w, probe.Snapshot(), width)
	}
	return nil
}

// writeSparkBlock renders one probe snapshot as per-series sparklines
// with their value range.
func writeSparkBlock(w io.Writer, tel *telemetry.Telemetry, width int) {
	full := telemetry.Window{Start: math.Inf(-1), End: math.Inf(1)}
	for _, name := range sparkSeries {
		vals := tel.Values(name, full)
		if len(vals) == 0 {
			fmt.Fprintf(w, "  %-12s (no samples)\n", name)
			continue
		}
		lo, hi := vals[0], vals[0]
		for _, v := range vals[1:] {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		fmt.Fprintf(w, "  %-12s %s  [%.3g, %.3g] over %d samples\n",
			name, telemetry.Sparkline(vals, width), lo, hi, len(vals))
	}
}
