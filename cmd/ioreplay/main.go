// Command ioreplay answers the operator question "what would the global
// I/O scheduler have bought us on this trace?": it reads a Darshan-style
// trace file (see cmd/wlgen and internal/trace), finds the congested
// windows, replays each one under the production baseline and the paper's
// heuristics, and prints the comparison.
//
//	wlgen -days 30 -out jobs.jsonl
//	ioreplay -in jobs.jsonl -machine intrepid
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/trace"
)

func main() {
	var (
		in        = flag.String("in", "", "trace file to analyze (JSON lines)")
		machine   = flag.String("machine", "intrepid", "platform preset: intrepid, mira, vesta")
		threshold = flag.Float64("threshold", 1.0, "congestion threshold as a fraction of B")
		policies  = flag.String("policies", "", "comma-separated scheduler names (default: the paper's Priority extremes)")
		top       = flag.Int("top", 0, "only report the N most congested windows (0 = all)")
		csvDir    = flag.String("csv", "", "directory for CSV export")
		version   = flag.Bool("version", false, "print build metadata and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "ioreplay")
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "ioreplay: -in <trace file> is required")
		os.Exit(2)
	}
	p, ok := platform.Presets()[*machine]
	if !ok {
		fatal(fmt.Errorf("unknown machine %q", *machine))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	recs, err := trace.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	opts := replay.Options{Platform: p, Threshold: *threshold}
	if *policies != "" {
		for _, name := range splitComma(*policies) {
			s, err := core.ByName(name)
			if err != nil {
				fatal(err)
			}
			opts.Schedulers = append(opts.Schedulers, s)
		}
	}
	res, err := replay.Analyze(recs, opts)
	if err != nil {
		fatal(err)
	}
	if len(res.Windows) == 0 {
		fmt.Printf("no congested windows above %.0f%% of B in %d records\n",
			100**threshold, len(recs))
		return
	}
	if *top > 0 && *top < len(res.Windows) {
		res.SortWindowsBySeverity()
		res.Windows = res.Windows[:*top]
	}
	doc := res.Report()
	if err := doc.Render(os.Stdout); err != nil {
		fatal(err)
	}
	if *csvDir != "" {
		if err := doc.ExportCSV(*csvDir); err != nil {
			fatal(err)
		}
	}
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ioreplay:", err)
	os.Exit(1)
}
