// Command ioloadgen drives a live ioschedd daemon with N concurrent
// synthetic applications, each cycling through compute → request →
// (progress) → complete phases, and reports the sustained message and
// grant rates. It is the load-side half of the daemon's performance
// story: run it against a remote daemon to size a deployment, or let it
// spawn an embedded daemon to measure the scheduler alone.
//
//	ioloadgen -clients 64 -iters 50                     # embedded daemon
//	ioloadgen -addr 127.0.0.1:9449 -clients 256         # live daemon
//
// Each client registers with its own app ID, requests -volume GiB after
// -compute of simulated computation, waits for a nonzero grant, spends
// -transfer mid-transfer (sending -progress interim reports), completes,
// and repeats. With -ramp the clients connect spread evenly over that
// window instead of all at once, so a deployment can be sized under a
// gradual arrival curve rather than a thundering herd.
//
// Every client times request-to-grant into its own lock-free
// telemetry.Histogram; the final report merges them and prints the
// mean/p50/p95/p99 grant latency alongside the throughput numbers.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "", "daemon address; empty spawns an embedded daemon")
		policy   = flag.String("policy", "Priority-MaxSysEff", "policy for the embedded daemon")
		totalBW  = flag.Float64("B", 24, "embedded daemon file-system bandwidth B (GiB/s)")
		nodeBW   = flag.Float64("b", 0.0125, "embedded daemon per-node bandwidth b (GiB/s)")
		clients  = flag.Int("clients", 16, "concurrent applications")
		nodes    = flag.Int("nodes", 64, "nodes per application")
		iters    = flag.Int("iters", 20, "request/complete cycles per application")
		volume   = flag.Float64("volume", 2, "I/O volume per cycle (GiB)")
		compute  = flag.Duration("compute", 2*time.Millisecond, "simulated compute time per cycle")
		transfer = flag.Duration("transfer", time.Millisecond, "simulated transfer time per cycle")
		progress = flag.Int("progress", 1, "interim progress reports per transfer")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-cycle grant wait limit")
		ramp     = flag.Duration("ramp", 0, "spread client connections evenly over this window (0 connects all at once)")
		version  = flag.Bool("version", false, "print build metadata and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "ioloadgen")
		return
	}

	var embedded *server.Server
	target := *addr
	if target == "" {
		pol, err := core.ByName(*policy)
		if err != nil {
			fatal(err)
		}
		srv, err := server.New(server.Config{Policy: pol, TotalBW: *totalBW, NodeBW: *nodeBW})
		if err != nil {
			fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		go srv.Serve(ln) //nolint:errcheck // exits on Close
		embedded = srv
		target = ln.Addr().String()
		fmt.Fprintf(os.Stderr, "ioloadgen: embedded %s daemon on %s (B=%g, b=%g)\n",
			pol.Name(), target, *totalBW, *nodeBW)
	}

	var (
		wg       sync.WaitGroup
		cycles   atomic.Int64
		grants   atomic.Int64
		failures atomic.Int64
	)
	// Per-client grant-latency histograms (request sent → nonzero grant
	// received): each goroutine observes into its own lock-free histogram
	// and the snapshots merge exactly, so the report's quantiles cover
	// every cycle without cross-client contention.
	hists := make([]*telemetry.Histogram, *clients)
	for i := range hists {
		hists[i] = telemetry.NewHistogram()
	}
	start := time.Now()
	for id := 1; id <= *clients; id++ {
		id := id
		hist := hists[id-1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if *ramp > 0 && *clients > 1 {
				// Client k joins at k/(clients-1) of the ramp window, so
				// the first connects immediately and the last at -ramp.
				time.Sleep(*ramp * time.Duration(id-1) / time.Duration(*clients-1))
			}
			c, err := server.Dial(target, id, *nodes)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ioloadgen: app %d: %v\n", id, err)
				if isFDLimit(err) {
					fmt.Fprintf(os.Stderr, "ioloadgen: hit the open-file-descriptor limit; raise it (e.g. `ulimit -n %d`) or lower -clients / spread connections with -ramp\n",
						nextPow2(2**clients+64))
				}
				failures.Add(1)
				return
			}
			defer c.Close()
			for i := 0; i < *iters; i++ {
				time.Sleep(*compute)
				work := compute.Seconds()
				ideal := work + *volume/(float64(*nodes)*(*nodeBW))
				reqStart := time.Now()
				if err := c.RequestIO(*volume, work, ideal); err != nil {
					fmt.Fprintf(os.Stderr, "ioloadgen: app %d: %v\n", id, err)
					failures.Add(1)
					return
				}
				if _, err := c.WaitForBandwidth(*timeout); err != nil {
					fmt.Fprintf(os.Stderr, "ioloadgen: app %d cycle %d: %v\n", id, i, err)
					failures.Add(1)
					return
				}
				hist.ObserveDuration(time.Since(reqStart))
				for p := 1; p <= *progress; p++ {
					time.Sleep(*transfer / time.Duration(*progress+1))
					rem := *volume * (1 - float64(p)/float64(*progress+1))
					if err := c.Progress(rem); err != nil {
						fmt.Fprintf(os.Stderr, "ioloadgen: app %d: %v\n", id, err)
						failures.Add(1)
						return
					}
				}
				time.Sleep(*transfer / time.Duration(*progress+1))
				if err := c.CompleteIO(); err != nil {
					fmt.Fprintf(os.Stderr, "ioloadgen: app %d: %v\n", id, err)
					failures.Add(1)
					return
				}
				cycles.Add(1)
			}
			grants.Add(int64(c.Seq()))
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("clients         %10d (%d nodes each)\n", *clients, *nodes)
	fmt.Printf("cycles          %10d (%d failures)\n", cycles.Load(), failures.Load())
	fmt.Printf("wall time       %10.2f s\n", elapsed.Seconds())
	fmt.Printf("cycle rate      %10.0f cycles/s\n", float64(cycles.Load())/elapsed.Seconds())
	fmt.Printf("grants applied  %10d\n", grants.Load())
	merged := telemetry.HistogramSnapshot{}
	for _, h := range hists {
		merged = merged.Merge(h.Snapshot())
	}
	if merged.Count > 0 {
		fmt.Printf("\ngrant latency over %d requests (request sent -> nonzero grant):\n", merged.Count)
		fmt.Printf("  mean          %10.3f ms\n", 1e3*merged.Mean())
		fmt.Printf("  p50           %10.3f ms\n", 1e3*merged.Quantile(0.50))
		fmt.Printf("  p95           %10.3f ms\n", 1e3*merged.Quantile(0.95))
		fmt.Printf("  p99           %10.3f ms\n", 1e3*merged.Quantile(0.99))
	}
	if embedded != nil {
		m := embedded.Metrics()
		fmt.Printf("\ndaemon metrics (%s):\n", m.Policy)
		fmt.Printf("  rounds        %10d\n", m.Rounds)
		fmt.Printf("  decisions     %10d\n", m.Decisions)
		fmt.Printf("  skipped       %10d (%.1f%% of rounds resolved without the policy)\n",
			m.Skipped, 100*float64(m.Skipped)/float64(max(m.Rounds, 1)))
		fmt.Printf("  grant pushes  %10d\n", m.GrantPushes)
		embedded.Close() //nolint:errcheck
	}
	if failures.Load() > 0 {
		os.Exit(1)
	}
}

// isFDLimit reports whether err is the process running out of file
// descriptors — the usual way a large -clients run dies, and worth a
// hint because the raw "socket: too many open files" is easy to misread
// as a daemon-side failure.
func isFDLimit(err error) bool {
	return errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE)
}

// nextPow2 rounds n up to a power of two for a tidy ulimit suggestion.
func nextPow2(n int) int {
	p := 1024
	for p < n {
		p *= 2
	}
	return p
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ioloadgen:", err)
	os.Exit(1)
}
