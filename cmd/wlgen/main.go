// Command wlgen generates and inspects Darshan-style workload traces:
//
//	wlgen -days 30 -out jobs.jsonl            # synthesize a trace
//	wlgen -in jobs.jsonl -congested           # find congested windows
//	wlgen -in jobs.jsonl -coverage 0.5        # subset to Darshan coverage
//
// Traces are JSON lines (one job record per line; see internal/trace).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		out       = flag.String("out", "", "write generated/filtered trace to this file ('-' for stdout)")
		in        = flag.String("in", "", "read an existing trace instead of generating")
		days      = flag.Int("days", 30, "days of synthetic workload to generate")
		seed      = flag.Int64("seed", 0, "generator seed")
		machine   = flag.String("machine", "intrepid", "platform preset: intrepid, mira, vesta")
		congested = flag.Bool("congested", false, "report congested windows of the trace")
		threshold = flag.Float64("threshold", 1.0, "congestion threshold as a fraction of B")
		coverage  = flag.Float64("coverage", 0, "subset the trace to this node-hour fraction (0 = keep all)")
		version   = flag.Bool("version", false, "print build metadata and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "wlgen")
		return
	}

	p, ok := platform.Presets()[*machine]
	if !ok {
		fatal(fmt.Errorf("unknown machine %q", *machine))
	}

	var recs []trace.JobRecord
	var err error
	if *in != "" {
		recs, err = readTrace(*in)
	} else {
		recs, err = generate(p, *days, *seed)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wlgen: %d job records\n", len(recs))

	if *coverage > 0 && *coverage < 1 {
		recs = trace.CoverageSubset(recs, *coverage, *seed+1)
		fmt.Fprintf(os.Stderr, "wlgen: %d records after %.0f%% coverage subset\n",
			len(recs), 100**coverage)
	}

	if *congested {
		wins := trace.FindCongestedWindows(recs, p, *threshold)
		fmt.Printf("%d congested windows (demand > %.0f%% of B = %.0f GiB/s)\n",
			len(wins), 100**threshold, p.TotalBW)
		for i, w := range wins {
			fmt.Printf("  window %2d: [%.0f, %.0f) s, %d jobs, peak demand %.1f GiB/s\n",
				i+1, w.Start, w.End, len(w.Jobs), w.PeakDemand)
		}
	}

	if *out != "" {
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := trace.Write(w, recs); err != nil {
			fatal(err)
		}
	}
}

func readTrace(path string) ([]trace.JobRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

func generate(p *platform.Platform, days int, seed int64) ([]trace.JobRecord, error) {
	var recs []trace.JobRecord
	jobID := 0
	for day := 0; day < days; day++ {
		apps, err := workload.Generate(workload.Config{
			Platform: p,
			Seed:     seed + int64(day)*17,
			Specs: []workload.Spec{
				{Count: 40, Category: workload.Small},
				{Count: 5, Category: workload.Large},
				{Count: 1, Category: workload.VeryLarge},
			},
			IORatio:       0.2,
			IORatioSpread: 0.6,
			Fill:          0.95,
		})
		if err != nil {
			return nil, err
		}
		for _, a := range apps {
			a.Release += float64(day) * 86400
			recs = append(recs, trace.FromApp(a, jobID, a.Release+a.DedicatedTime(p)))
			jobID++
		}
	}
	return recs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wlgen:", err)
	os.Exit(1)
}
