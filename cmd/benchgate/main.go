// Command benchgate compares `go test -bench` output on stdin against a
// committed baseline and fails when a benchmark regresses beyond the
// allowed factors. It is the CI smoke gate for the simulator hot path:
//
//	go test -run '^$' -bench BenchmarkFig6aHeuristics -benchmem -benchtime 5x . |
//	    go run ./cmd/benchgate -baseline BENCH_baseline.json -factor 2
//
// Two checks per benchmark:
//
//   - ns/op against factor × baseline: deliberately generous (shared CI
//     runners are noisy and their hardware differs from the recording
//     machine); it catches order-of-magnitude mistakes — an accidentally
//     quadratic rescan — not single-digit drift.
//   - allocs/op against baseline + alloc-slack: allocation counts are
//     machine-independent and deterministic, so this half of the gate is
//     exact-or-better — a measurement may beat the baseline freely but
//     may exceed it only by the small absolute slack (a few allocations
//     of scheduling jitter), never by a factor. A reintroduced per-event
//     or per-candidate allocation fails it on any hardware (requires
//     -benchmem output).
//
// Benchmarks present in only one of the two sides are ignored, so adding
// a benchmark does not require regenerating the baseline. Use -require to
// fail when expected benchmarks are missing from stdin (a crashed or
// misfiltered `go test` must not pass silently).
//
// -step names the CI step in every failure line, so a red gate in a
// multi-step job points at the step that produced it without reading the
// whole log. -json replaces the human table with one machine-readable
// report on stdout (the raw benchmark lines move to stderr), for CI
// annotation tooling.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/buildinfo"
)

// Baseline is the committed reference file (BENCH_baseline.json).
type Baseline struct {
	Recorded string `json:"recorded"`
	Go       string `json:"go,omitempty"`
	CPU      string `json:"cpu,omitempty"`
	// Benchmarks maps the benchmark name (without -N GOMAXPROCS suffix)
	// to its reference numbers.
	Benchmarks map[string]BenchRef `json:"benchmarks"`
	Notes      []string            `json:"notes,omitempty"`
}

// BenchRef is one benchmark's reference measurement.
type BenchRef struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// measurement is one parsed benchmark line.
type measurement struct {
	nsPerOp     float64
	allocsPerOp float64 // -1 when -benchmem was not passed
}

// result is one benchmark's verdict against the baseline.
type result struct {
	Name           string  `json:"name"`
	NsPerOp        float64 `json:"ns_per_op"`
	BaselineNs     float64 `json:"baseline_ns_per_op"`
	Ratio          float64 `json:"ratio"`
	AllocsPerOp    float64 `json:"allocs_per_op,omitempty"`
	BaselineAllocs float64 `json:"baseline_allocs_per_op,omitempty"`
	Status         string  `json:"status"`
}

var step string

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline file")
	factor := flag.Float64("factor", 2, "fail when ns/op exceeds baseline by this factor")
	allocSlack := flag.Float64("alloc-slack", 8, "fail when allocs/op exceeds baseline by more than this many allocations")
	require := flag.String("require", "", "comma-separated benchmark names that must appear on stdin")
	jsonOut := flag.Bool("json", false, "emit the report as JSON on stdout (raw bench lines go to stderr)")
	flag.StringVar(&step, "step", "", "CI step name to include in failure output")
	version := flag.Bool("version", false, "print build metadata and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "benchgate")
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal("reading baseline: %v", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal("parsing %s: %v", *baselinePath, err)
	}

	// In JSON mode stdout must stay a single JSON document; the raw
	// benchmark passthrough moves to stderr.
	passthrough := io.Writer(os.Stdout)
	if *jsonOut {
		passthrough = os.Stderr
	}
	measured := parseBench(os.Stdin, passthrough)
	if len(measured) == 0 {
		fatal("no benchmark lines on stdin (pipe `go test -bench` output in)")
	}
	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			if _, ok := measured[strings.TrimSpace(name)]; !ok {
				fatal("required benchmark %q missing from stdin (did go test fail?)", name)
			}
		}
	}

	names := make([]string, 0, len(measured))
	for name := range measured {
		names = append(names, name)
	}
	sort.Strings(names)

	var results []result
	failed := 0
	for _, name := range names {
		m := measured[name]
		ref, ok := base.Benchmarks[name]
		if !ok || ref.NsPerOp <= 0 {
			continue
		}
		r := result{
			Name:       name,
			NsPerOp:    m.nsPerOp,
			BaselineNs: ref.NsPerOp,
			Ratio:      m.nsPerOp / ref.NsPerOp,
			Status:     "ok",
		}
		if r.Ratio > *factor {
			r.Status = "FAIL(ns/op)"
			failed++
		}
		if ref.AllocsPerOp > 0 && m.allocsPerOp >= 0 {
			r.AllocsPerOp = m.allocsPerOp
			r.BaselineAllocs = ref.AllocsPerOp
			if m.allocsPerOp > ref.AllocsPerOp+*allocSlack {
				r.Status = "FAIL(allocs/op)"
				failed++
			}
		}
		results = append(results, r)
	}

	if *jsonOut {
		report := struct {
			Step     string   `json:"step,omitempty"`
			Baseline string   `json:"baseline"`
			Recorded string   `json:"recorded,omitempty"`
			Checked  int      `json:"checked"`
			Failed   int      `json:"failed"`
			Results  []result `json:"results"`
		}{
			Step: step, Baseline: *baselinePath, Recorded: base.Recorded,
			Checked: len(results), Failed: failed, Results: results,
		}
		if report.Results == nil {
			report.Results = []result{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal("%v", err)
		}
	} else {
		for _, r := range results {
			allocNote := ""
			if r.BaselineAllocs > 0 {
				allocNote = fmt.Sprintf("  allocs %6.0f/%6.0f (%+.0f)",
					r.AllocsPerOp, r.BaselineAllocs, r.AllocsPerOp-r.BaselineAllocs)
			}
			fmt.Printf("%-40s %14.0f ns/op  baseline %14.0f  ratio %5.2f%s  %s\n",
				r.Name, r.NsPerOp, r.BaselineNs, r.Ratio, allocNote, r.Status)
		}
	}
	if len(results) == 0 {
		fatal("no measured benchmark matched the baseline (names: %v)", keys(base.Benchmarks))
	}
	if failed > 0 {
		fatal("%d check(s) regressed beyond ns/op %.1fx / allocs baseline+%.0f (baseline recorded %s on %s)",
			failed, *factor, *allocSlack, base.Recorded, base.CPU)
	}
}

// parseBench extracts per-benchmark measurements from `go test -bench`
// output. The trailing -N processor-count suffix is stripped so baselines
// transfer between machines with different GOMAXPROCS.
func parseBench(f *os.File, passthrough io.Writer) map[string]measurement {
	out := map[string]measurement{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(passthrough, line) // keep the raw output in the CI log
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Benchmark<Name>[-N] <iters> <ns> ns/op [... <allocs> allocs/op]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		m := measurement{nsPerOp: ns, allocsPerOp: -1}
		for i := 4; i+1 < len(fields); i += 2 {
			if fields[i+1] == "allocs/op" {
				if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
					m.allocsPerOp = v
				}
			}
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		out[name] = m
	}
	return out
}

func keys(m map[string]BenchRef) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func fatal(format string, args ...any) {
	prefix := "benchgate"
	if step != "" {
		prefix = "benchgate[" + step + "]"
	}
	fmt.Fprintf(os.Stderr, prefix+": "+format+"\n", args...)
	os.Exit(1)
}
