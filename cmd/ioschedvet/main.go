// Command ioschedvet machine-enforces the engine invariants that
// docs/architecture.md and docs/performance.md state in prose. It runs
// the internal/analysis suite — determinism, lockorder, nilgate,
// engineversion — in two interchangeable ways:
//
//	ioschedvet ./...                      # standalone multichecker
//	go vet -vettool=$(which ioschedvet) ./...   # unitchecker protocol
//
// plus the escape-analysis gate over //iosched:allocfree annotations:
//
//	ioschedvet -allocfree ./...
//
// Exit status 1 means unsuppressed diagnostics (or, with -allocfree,
// heap escapes in annotated functions). -json switches the standalone
// modes to a machine-readable report for CI annotations. See
// docs/static-analysis.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/buildinfo"
)

func main() {
	// The `go vet -vettool` driver probes the tool before handing it
	// compilation units: -flags must answer the supported-flags query
	// and -V=full the version/buildid query.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		case "-V=full", "--V=full":
			fmt.Println("ioschedvet version 1")
			return
		}
	}

	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	allocfree := flag.Bool("allocfree", false, "run the //iosched:allocfree escape-analysis gate instead of the AST analyzers")
	showFingerprint := flag.Bool("fingerprint", false, "print the campaign schema fingerprint the engineversion analyzer expects, then exit")
	version := flag.Bool("version", false, "print build metadata and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ioschedvet [-json] [-allocfree] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", "allocfree", "forbid heap escapes in //iosched:allocfree functions (-allocfree mode)")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "ioschedvet")
		return
	}
	args := flag.Args()

	// Unitchecker mode: `go vet` invokes the tool with a single
	// compilation-unit config file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		diags, err := analysis.RunUnitchecker(args[0])
		if err != nil {
			fatal("%v", err)
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s\n", d)
		}
		if len(diags) > 0 {
			os.Exit(1)
		}
		return
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal("%v", err)
	}

	if *showFingerprint {
		printFingerprint(cwd, args)
		return
	}

	var diags []analysis.Diagnostic
	if *allocfree {
		diags, err = analysis.AllocFree(cwd, args...)
		if err != nil {
			fatal("%v", err)
		}
	} else {
		pkgs, lerr := analysis.Load(cwd, args...)
		if lerr != nil {
			fatal("%v", lerr)
		}
		for _, pkg := range pkgs {
			if pkg.TypeError != nil {
				fatal("type-checking %s: %v", pkg.ImportPath, pkg.TypeError)
			}
			diags = append(diags, analysis.RunAnalyzers(
				analysis.Analyzers(), pkg.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.Module)...)
		}
		analysis.SortDiagnostics(diags)
	}
	report(diags, *jsonOut)
}

// jsonDiag is the -json wire shape of one diagnostic.
type jsonDiag struct {
	Analyzer      string `json:"analyzer"`
	File          string `json:"file"`
	Line          int    `json:"line"`
	Column        int    `json:"column"`
	Message       string `json:"message"`
	Suppressed    bool   `json:"suppressed,omitempty"`
	Justification string `json:"justification,omitempty"`
}

// report prints the diagnostics (suppressed ones only in -json, where
// the audit trail is part of the report) and exits 1 when any
// unsuppressed remain.
func report(diags []analysis.Diagnostic, jsonOut bool) {
	unsuppressed := 0
	for _, d := range diags {
		if !d.Suppressed {
			unsuppressed++
		}
	}
	if jsonOut {
		out := struct {
			Diagnostics  []jsonDiag `json:"diagnostics"`
			Unsuppressed int        `json:"unsuppressed"`
		}{Diagnostics: []jsonDiag{}, Unsuppressed: unsuppressed}
		for _, d := range diags {
			out.Diagnostics = append(out.Diagnostics, jsonDiag{
				Analyzer: d.Analyzer, File: d.Pos.Filename,
				Line: d.Pos.Line, Column: d.Pos.Column,
				Message: d.Message, Suppressed: d.Suppressed,
				Justification: d.Justification,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal("%v", err)
		}
	} else {
		for _, d := range diags {
			if d.Suppressed {
				continue
			}
			fmt.Println(d)
		}
	}
	if unsuppressed > 0 {
		fmt.Fprintf(os.Stderr, "ioschedvet: %d unsuppressed diagnostic(s)\n", unsuppressed)
		os.Exit(1)
	}
}

// printFingerprint loads internal/campaign and prints the schema
// fingerprint the engineversion analyzer pins, for refreshing the
// //iosched:engineversion directive after a deliberate schema change.
func printFingerprint(cwd string, patterns []string) {
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fatal("%v", err)
	}
	for _, pkg := range pkgs {
		if !analysis.PathInScope(pkg.ImportPath, "internal/campaign") {
			continue
		}
		hash, missing := analysis.SchemaFingerprint(pkg.Types, pkg.Module, []string{"CellResult", "fingerprint"})
		for _, m := range missing {
			fmt.Fprintf(os.Stderr, "ioschedvet: %s: schema root %q not found\n", pkg.ImportPath, m)
		}
		fmt.Printf("%s %s\n", pkg.ImportPath, hash)
		return
	}
	fatal("no internal/campaign package in %v", patterns)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ioschedvet: "+format+"\n", args...)
	os.Exit(1)
}
