// Command ioschedd is the global I/O scheduler daemon: the paper's
// scheduler thread promoted to a standalone TCP service that HPC
// applications (or their I/O middleware) consult before every I/O phase.
//
//	ioschedd -listen :9449 -policy Priority-MaxSysEff -B 24 -b 0.0125
//
// The wire protocol is newline-delimited JSON (see internal/server):
//
//	-> {"type":"hello","app_id":1,"nodes":4096}
//	<- {"type":"welcome","app_id":1}
//	-> {"type":"request","volume_gib":900,"work_s":600,"ideal_s":637}
//	<- {"type":"grant","app_id":1,"bw_gibs":24,"seq":1}
//	-> {"type":"complete"}
//
// With -metrics, the daemon also serves its operational counters as JSON
// over HTTP:
//
//	ioschedd -listen :9449 -machine intrepid -metrics :9450
//	curl http://localhost:9450/metrics
//	{"policy":"Priority-MaxSysEff","sessions":12,"candidates":3,
//	 "rounds":841,"decisions":512,"skipped":329,"grant_pushes":290,...}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/server"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:9449", "TCP listen address")
		policy  = flag.String("policy", "Priority-MaxSysEff", "scheduling policy")
		machine = flag.String("machine", "", "platform preset supplying B and b (intrepid, mira, vesta)")
		totalBW = flag.Float64("B", 0, "file-system bandwidth B in GiB/s (overrides -machine)")
		nodeBW  = flag.Float64("b", 0, "per-node I/O-card bandwidth b in GiB/s (overrides -machine)")
		metrics = flag.String("metrics", "", "HTTP listen address for the /metrics endpoint (disabled when empty)")
		quiet   = flag.Bool("quiet", false, "disable connection logging")
	)
	flag.Parse()

	B, b := *totalBW, *nodeBW
	if *machine != "" {
		p, ok := platform.Presets()[*machine]
		if !ok {
			fatal(fmt.Errorf("unknown machine %q", *machine))
		}
		if B == 0 {
			B = p.TotalBW
		}
		if b == 0 {
			b = p.NodeBW
		}
	}
	if B == 0 || b == 0 {
		fatal(fmt.Errorf("need -machine or both -B and -b"))
	}

	pol, err := core.ByName(*policy)
	if err != nil {
		fatal(err)
	}
	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "ioschedd: ", log.LstdFlags)
	}
	srv, err := server.New(server.Config{
		Policy:  pol,
		TotalBW: B,
		NodeBW:  b,
		Logger:  logger,
	})
	if err != nil {
		fatal(err)
	}

	if *metrics != "" {
		mln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fatal(fmt.Errorf("metrics endpoint: %w", err))
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(srv.Metrics()) //nolint:errcheck // best-effort HTTP reply
		})
		go http.Serve(mln, mux) //nolint:errcheck // exits with the process
		fmt.Fprintf(os.Stderr, "ioschedd: metrics on http://%s/metrics\n", mln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "ioschedd: shutting down")
		srv.Close()
	}()

	fmt.Fprintf(os.Stderr, "ioschedd: %s on %s (B=%g GiB/s, b=%g GiB/s)\n",
		pol.Name(), *listen, B, b)
	if err := srv.ListenAndServe(*listen); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ioschedd:", err)
	os.Exit(1)
}
