// Command ioschedd is the global I/O scheduler daemon: the paper's
// scheduler thread promoted to a standalone TCP service that HPC
// applications (or their I/O middleware) consult before every I/O phase.
//
//	ioschedd -listen :9449 -policy Priority-MaxSysEff -B 24 -b 0.0125
//
// The wire protocol is newline-delimited JSON (see internal/server):
//
//	-> {"type":"hello","app_id":1,"nodes":4096,"profile":[{"work_s":600,"volume_gib":900}]}
//	<- {"type":"welcome","app_id":1}
//	-> {"type":"request","volume_gib":900,"work_s":600,"ideal_s":637}
//	<- {"type":"grant","app_id":1,"bw_gibs":24,"seq":1}
//	-> {"type":"complete"}
//
// With -metrics, the daemon serves its operational state as JSON over
// HTTP: /metrics (counters), /healthz (liveness), and /snapshot (the
// consistent live view the digital twin consumes — see cmd/iotwin).
//
// With -advise, the daemon runs the observe-predict-advise-actuate loop
// of internal/twin on the given period: it snapshots itself, forecasts a
// panel of candidate policies on the simulator, and — guarded by
// hysteresis — switches its own policy when a challenger keeps
// forecasting better. The latest advice is served at /forecast.
//
//	ioschedd -listen :9449 -machine intrepid -metrics :9450 \
//	         -advise 30s -advise-horizon 600
//	curl http://localhost:9450/forecast
//
// With -dectrace N, the daemon keeps its last N allocation decisions —
// verdicts, skip reasons, candidate views and grants (internal/dectrace)
// — in a ring served at /dectrace; -dectrace-file additionally streams
// every decision to a JSONL file for offline replay (see docs/tracing.md).
//
//	ioschedd -listen :9449 -machine intrepid -metrics :9450 \
//	         -dectrace 512 -dectrace-file decisions.jsonl
//	curl http://localhost:9450/dectrace
//
// A bounded telemetry probe (internal/telemetry) is attached by default:
// every allocation round samples the congestion signals into a ring of
// -telemetry-points entries and times the service paths into latency
// histograms. The series is served as JSON at /telemetry and — together
// with the live gauges — in Prometheus text format at /metrics.prom;
// -telemetry-points 0 disables the probe, leaving the round path exactly
// as free as before (see docs/observability.md).
//
// On top of the probe, a health monitor (internal/health) runs streaming
// anomaly detectors — I/O stall, fairness collapse, persistent
// congestion, imminent burst-buffer overflow, grant-push latency SLO
// burn — over every allocation round. /healthz deepens into the
// per-detector verdict, /alerts serves the transition ring, and a flight
// recorder freezes telemetry + decision traces + alerts + a live
// snapshot into a deterministic incident bundle: automatically when a
// detector fires (rate-limited, to -incident-dir), on SIGQUIT, or on
// demand at /debug/flight. Bundles replay offline with
// `iosim -run incident <bundle>`. A firing detector also kicks the
// advisor loop immediately and collapses its patience guard, so policy
// switches chase live anomalies instead of the next tick. -health=false
// removes the monitor entirely (a nil monitor costs nothing).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/dectrace"
	"repro/internal/health"
	"repro/internal/platform"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/twin"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:9449", "TCP listen address")
		policy  = flag.String("policy", "Priority-MaxSysEff", "scheduling policy")
		machine = flag.String("machine", "", "platform preset supplying B and b (intrepid, mira, vesta)")
		totalBW = flag.Float64("B", 0, "file-system bandwidth B in GiB/s (overrides -machine)")
		nodeBW  = flag.Float64("b", 0, "per-node I/O-card bandwidth b in GiB/s (overrides -machine)")
		metrics = flag.String("metrics", "", "HTTP listen address for /metrics, /healthz, /snapshot, /forecast (disabled when empty)")
		quiet   = flag.Bool("quiet", false, "disable connection logging")

		advise    = flag.Duration("advise", 0, "advisor period (0 disables the forecast loop)")
		advPanel  = flag.String("advise-policies", "", "candidate policy panel (default: the running policy plus the paper's heuristics)")
		advHrzn   = flag.Float64("advise-horizon", 600, "forecast horizon in simulated seconds (0 = to completion)")
		advMargin = flag.Float64("advise-margin", 0.05, "relative improvement required to challenge the running policy")
		advPtnce  = flag.Int("advise-patience", 2, "consecutive winning forecasts before a switch")
		advObj    = flag.String("advise-objective", "max-stretch", "advisor objective: max-stretch or sys-eff")
		advApply  = flag.Bool("advise-apply", true, "apply recommended switches (false = advise only)")

		dectraceN    = flag.Int("dectrace", 0, "keep the last N decision records in memory and serve them at /dectrace (0 disables)")
		dectraceFile = flag.String("dectrace-file", "", "append every decision record to this JSONL file")

		telPoints   = flag.Int("telemetry-points", 4096, "telemetry ring size: congestion samples kept for /telemetry (0 disables the probe and its latency histograms)")
		telInterval = flag.Duration("telemetry-interval", 0, "minimum spacing between telemetry samples (0 samples every round)")

		healthOn    = flag.Bool("health", true, "run streaming anomaly detectors over every allocation round (false removes the monitor entirely)")
		healthSLO   = flag.Float64("health-slo", 0.5, "grant-push latency SLO in seconds for the slo_burn detector (0 disables it; needs the telemetry probe)")
		incidentDir = flag.String("incident-dir", "", "write incident bundles here when a detector fires (empty: only SIGQUIT and /debug/flight dump bundles)")

		version = flag.Bool("version", false, "print build metadata and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "ioschedd")
		return
	}

	B, b := *totalBW, *nodeBW
	var preset *platform.Platform
	if *machine != "" {
		p, ok := platform.Presets()[*machine]
		if !ok {
			fatal(fmt.Errorf("unknown machine %q", *machine))
		}
		preset = p.WithoutBB()
		if B == 0 {
			B = p.TotalBW
		}
		if b == 0 {
			b = p.NodeBW
		}
	}
	if B == 0 || b == 0 {
		fatal(fmt.Errorf("need -machine or both -B and -b"))
	}

	pol, err := core.ByName(*policy)
	if err != nil {
		fatal(err)
	}
	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "ioschedd: ", log.LstdFlags)
	}
	var ring *dectrace.Ring
	var traceFile *dectrace.Writer
	var sinks dectrace.Tee
	if *dectraceN > 0 {
		ring = dectrace.NewRing(*dectraceN)
		sinks = append(sinks, ring)
	}
	if *dectraceFile != "" {
		f, err := os.OpenFile(*dectraceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(fmt.Errorf("dectrace file: %w", err))
		}
		defer f.Close()
		traceFile = dectrace.NewWriter(f)
		defer func() {
			if err := traceFile.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "ioschedd: dectrace file:", err)
			}
		}()
		sinks = append(sinks, traceFile)
	}
	var sink dectrace.Sink
	switch len(sinks) {
	case 0:
		// leave nil: the decision path stays untouched
	case 1:
		sink = sinks[0]
	default:
		sink = sinks
	}

	var probe *telemetry.Probe
	if *telPoints > 0 {
		probe = &telemetry.Probe{
			MinInterval: telInterval.Seconds(),
			MaxPoints:   *telPoints,
		}
	}

	// The monitor's OnAlert runs on the round path with the server lock
	// held, so it only forwards the transition to a buffered channel; the
	// drain goroutine below does the logging, advisor kicks and bundle
	// dumps.
	var mon *health.Monitor
	var alertCh chan health.Alert
	if *healthOn {
		alertCh = make(chan health.Alert, 64)
		hcfg := health.Config{}
		if *healthSLO > 0 && probe != nil {
			hcfg.SLOLatency = *healthSLO
			hcfg.SLOSource = probe.Histogram("ioschedd_grant_push_delay_seconds")
		}
		hcfg.OnAlert = func(a health.Alert) {
			select {
			case alertCh <- a:
			default: // never block the round path
			}
		}
		mon = health.New(hcfg)
	}

	srv, err := server.New(server.Config{
		Policy:        pol,
		TotalBW:       B,
		NodeBW:        b,
		Logger:        logger,
		DecisionTrace: sink,
		Telemetry:     probe,
		Health:        mon,
	})
	if err != nil {
		fatal(err)
	}

	// The flight recorder assembles incident bundles from whatever
	// sources are attached; a section with no source is simply absent.
	var flight *health.Recorder
	if mon != nil {
		flight = &health.Recorder{
			Monitor: mon,
			Live: func() json.RawMessage {
				b, err := json.Marshal(srv.Snapshot())
				if err != nil {
					return nil
				}
				return b
			},
		}
		if probe != nil {
			flight.Telemetry = probe.Snapshot
		}
		if ring != nil {
			flight.Decisions = ring.Records
		}
	}

	var adv *advisorLoop
	if *advise > 0 {
		panel := splitList(*advPanel)
		if len(panel) == 0 {
			panel = defaultPanel(pol.Name())
		}
		advCfg := twin.AdvisorConfig{
			Objective: twin.Objective(*advObj),
			Margin:    *advMargin,
			Patience:  *advPtnce,
		}
		adv = &advisorLoop{
			srv:      srv,
			mon:      mon,
			platform: preset, // nil synthesizes one from each snapshot
			panel:    panel,
			horizon:  *advHrzn,
			period:   *advise,
			apply:    *advApply,
			logger:   logger,
			advCfg:   advCfg,
			advisor:  twin.NewAdvisor(advCfg, pol.Name()),
			kickCh:   make(chan struct{}, 1),
			stop:     make(chan struct{}),
		}
		go adv.run()
		fmt.Fprintf(os.Stderr, "ioschedd: advisor every %v over %v (horizon %gs, apply=%v)\n",
			*advise, panel, *advHrzn, *advApply)
	}

	// Drain alert transitions off the round path: log each, kick the
	// advisor on firings (detector state, not the next tick, triggers
	// reassessment), and dump a rate-limited incident bundle when an
	// incident directory is configured.
	if alertCh != nil {
		go func() {
			for a := range alertCh {
				fmt.Fprintf(os.Stderr, "ioschedd: health %s %s [%s] t=%.1f %s\n",
					a.Detector, a.Kind, a.Severity, a.Time, a.Evidence)
				if a.Kind != health.KindFiring {
					continue
				}
				if adv != nil {
					adv.kick()
				}
				if *incidentDir != "" {
					if b := flight.AutoCapture(a.Time, "alert:"+a.Detector); b != nil {
						if path, err := writeBundle(*incidentDir, b); err != nil {
							fmt.Fprintln(os.Stderr, "ioschedd: incident bundle:", err)
						} else {
							fmt.Fprintln(os.Stderr, "ioschedd: incident bundle written to", path)
						}
					}
				}
			}
		}()
	}

	if *metrics != "" {
		mln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fatal(fmt.Errorf("metrics endpoint: %w", err))
		}
		mux := http.NewServeMux()
		serveJSON := func(path string, payload func() (any, bool)) {
			mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
				v, ok := payload()
				if !ok {
					http.Error(w, "not available yet", http.StatusNotFound)
					return
				}
				w.Header().Set("Content-Type", "application/json")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				enc.Encode(v) //nolint:errcheck // best-effort HTTP reply
			})
		}
		serveJSON("/metrics", func() (any, bool) { return srv.Metrics(), true })
		serveJSON("/snapshot", func() (any, bool) { return srv.Snapshot(), true })
		serveJSON("/healthz", func() (any, bool) {
			m := srv.Metrics()
			out := map[string]any{
				"status":   "ok",
				"policy":   m.Policy,
				"uptime_s": m.UptimeSeconds,
				"sessions": m.Sessions,
				"build":    buildinfo.Get(),
			}
			if mon != nil {
				snap := mon.Snapshot()
				out["status"] = snap.State
				out["anomalies"] = snap.Anomalies
				out["congestion_error"] = snap.CongestionError
				out["detectors"] = snap.Detectors
			}
			return out, true
		})
		serveJSON("/alerts", func() (any, bool) {
			if mon == nil {
				return nil, false
			}
			return map[string]any{
				"state":     mon.State().String(),
				"anomalies": mon.Anomalies(),
				"alerts":    mon.Alerts(),
			}, true
		})
		serveJSON("/forecast", func() (any, bool) {
			if adv == nil {
				return nil, false
			}
			return adv.lastReport()
		})
		serveJSON("/dectrace", func() (any, bool) {
			if ring == nil {
				return nil, false
			}
			return map[string]any{
				"total":   ring.Total(),
				"records": ring.Records(),
			}, true
		})
		serveJSON("/telemetry", func() (any, bool) {
			if probe == nil {
				return nil, false
			}
			return probe.Snapshot(), true
		})
		// Prometheus text exposition next to the JSON endpoints: the live
		// congestion gauges always, the latency histograms when the
		// telemetry probe is on.
		mux.HandleFunc("/metrics.prom", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			srv.WritePrometheus(w) //nolint:errcheck // best-effort HTTP reply
		})
		// /debug/flight captures an incident bundle on demand — the same
		// bytes an alert or SIGQUIT would dump, served instead of written.
		mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
			if flight == nil {
				http.Error(w, "health monitor disabled", http.StatusNotFound)
				return
			}
			data, err := flight.Capture(srv.Snapshot().Time, "http").Encode()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(data) //nolint:errcheck // best-effort HTTP reply
		})
		// Live profiling rides on the metrics endpoint: the daemon can be
		// profiled under production load without a restart (see
		// docs/performance.md). Deliberately on the operator-facing
		// metrics listener, never the scheduling port.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go http.Serve(mln, mux) //nolint:errcheck // exits with the process
		fmt.Fprintf(os.Stderr, "ioschedd: metrics on http://%s/metrics (/metrics.prom, /healthz, /alerts, /snapshot, /forecast, /telemetry, /debug/flight, /debug/pprof)\n", mln.Addr())
	}

	// SIGQUIT dumps an incident bundle without shutting down — the
	// classic black-box kick for a daemon that looks wedged.
	if flight != nil {
		quitSig := make(chan os.Signal, 1)
		signal.Notify(quitSig, syscall.SIGQUIT)
		go func() {
			for range quitSig {
				dir := *incidentDir
				if dir == "" {
					dir = "."
				}
				path, err := writeBundle(dir, flight.Capture(srv.Snapshot().Time, "sigquit"))
				if err != nil {
					fmt.Fprintln(os.Stderr, "ioschedd: incident bundle:", err)
					continue
				}
				fmt.Fprintln(os.Stderr, "ioschedd: incident bundle written to", path)
			}
		}()
	}

	// SIGTERM must take the same graceful path as ^C: the deferred
	// trace-file flush only runs when ListenAndServe returns.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "ioschedd: shutting down")
		if adv != nil {
			adv.close()
		}
		srv.Close()
	}()

	fmt.Fprintf(os.Stderr, "ioschedd: %s on %s (B=%g GiB/s, b=%g GiB/s)\n",
		pol.Name(), *listen, B, b)
	if err := srv.ListenAndServe(*listen); err != nil {
		fatal(err)
	}
}

// Report is what /forecast serves: the latest advise round's outcome.
type Report struct {
	// Time is the snapshot instant (daemon clock) the round observed.
	Time float64 `json:"time"`
	// Advice is the advisor's verdict; Applied whether the daemon
	// actually switched (false under -advise-apply=false).
	Advice  twin.Advice `json:"advice"`
	Applied bool        `json:"applied"`
	// Forecasts is the full per-policy panel.
	Forecasts []twin.Forecast `json:"forecasts"`
	// SkippedApps lists sessions the twin could not reconstruct.
	SkippedApps []int `json:"skipped_apps,omitempty"`
	// Err is set when the round failed (e.g. nothing to forecast).
	Err string `json:"err,omitempty"`
}

// advisorLoop runs the observe-predict-advise-actuate loop on a period,
// and out of band whenever a health detector fires (via kick).
type advisorLoop struct {
	srv      *server.Server
	mon      *health.Monitor // nil: assessments never see pressure
	platform *platform.Platform
	panel    []string
	horizon  float64
	period   time.Duration
	apply    bool
	logger   *log.Logger
	advCfg   twin.AdvisorConfig
	advisor  *twin.Advisor

	mu     sync.Mutex
	report *Report

	kickCh   chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
}

func (a *advisorLoop) close() { a.stopOnce.Do(func() { close(a.stop) }) }

// kick requests an immediate advise round; a round already pending
// coalesces. Never blocks.
func (a *advisorLoop) kick() {
	select {
	case a.kickCh <- struct{}{}:
	default:
	}
}

func (a *advisorLoop) lastReport() (any, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.report == nil {
		return nil, false
	}
	return a.report, true
}

func (a *advisorLoop) setReport(r *Report) {
	a.mu.Lock()
	a.report = r
	a.mu.Unlock()
}

func (a *advisorLoop) logf(format string, args ...any) {
	if a.logger != nil {
		a.logger.Printf(format, args...)
	}
}

func (a *advisorLoop) run() {
	tick := time.NewTicker(a.period)
	defer tick.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-tick.C:
		case <-a.kickCh:
		}
		a.step()
	}
}

// step is one advise round.
func (a *advisorLoop) step() {
	sys := a.srv.Snapshot()
	report := &Report{Time: sys.Time}
	defer func() { a.setReport(report) }()

	conv, err := twin.FromSystem(sys, a.platform)
	if err != nil {
		report.Err = err.Error()
		return
	}
	report.SkippedApps = conv.Skipped
	eng, err := twin.New(twin.Config{Platform: conv.Platform, Horizon: a.horizon})
	if err != nil {
		report.Err = err.Error()
		return
	}
	panel := a.panel
	if !slices.Contains(panel, sys.Policy) {
		// The incumbent must be in the panel or the advisor cannot
		// compare against it (e.g. after an operator-initiated switch).
		panel = append(append([]string(nil), panel...), sys.Policy)
	}
	forecasts, err := eng.Forecast(conv.Apps, conv.Snapshot, panel)
	if err != nil {
		report.Err = err.Error()
		return
	}
	a.srv.NoteForecast()
	report.Forecasts = forecasts

	if a.advisor.Current() != sys.Policy {
		// The daemon's policy changed outside the advisor; re-anchor.
		a.advisor = twin.NewAdvisor(a.advCfg, sys.Policy)
	}
	// A firing detector collapses the advisor's patience guard: under
	// live anomaly pressure a winning challenger switches immediately.
	pressure := a.mon != nil && a.mon.State() != health.OK
	advice, err := a.advisor.AssessWith(forecasts, pressure)
	if err != nil {
		report.Err = err.Error()
		return
	}
	report.Advice = advice
	if advice.Switch && a.apply {
		next, err := core.ByName(advice.Best)
		if err != nil {
			report.Err = err.Error()
			return
		}
		if err := a.srv.SetPolicy(next); err != nil {
			report.Err = err.Error()
			return
		}
		report.Applied = true
		a.logf("advisor: %s", advice.Reason)
	}
}

// defaultPanel is the running policy plus the paper's heuristics and the
// fair-share baseline.
func defaultPanel(current string) []string {
	panel := []string{current}
	for _, name := range []string{"Priority-MaxSysEff", "MaxSysEff", "MinDilation", "RoundRobin", "fair-share"} {
		if !slices.Contains(panel, name) {
			panel = append(panel, name)
		}
	}
	return panel
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// writeBundle persists an incident bundle as
// <dir>/incident-t<time>-<reason>.json and returns the path.
func writeBundle(dir string, b *health.Bundle) (string, error) {
	data, err := b.Encode()
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("incident-t%.3f-%s.json", b.Time, strings.ReplaceAll(b.Reason, ":", "-"))
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ioschedd:", err)
	os.Exit(1)
}
